//! Page-granular access traces.
//!
//! The paper's ongoing-work section proposes studying algorithms' memory
//! access patterns to predict out-of-core performance.  `m3-vmsim` does this
//! concretely: an [`AccessTrace`] records which pages an algorithm touches in
//! which order, and the simulator replays the trace against a model of the
//! page cache and SSD to estimate runtime at arbitrary dataset and RAM sizes.
//!
//! Traces can be recorded from real runs (via [`TraceRecorder`]) or generated
//! synthetically for access patterns whose structure is known analytically
//! (e.g. "ten sequential sweeps over N bytes", which is exactly the L-BFGS
//! and k-means pattern).

use crate::PAGE_SIZE;

/// One recorded access to a page-aligned range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Index of the first page touched.
    pub first_page: u64,
    /// Number of consecutive pages touched.
    pub page_count: u64,
    /// Whether the access was a write (dirty pages must be written back).
    pub is_write: bool,
}

impl AccessEvent {
    /// Iterate over the individual page indices covered by this event.
    pub fn pages(&self) -> impl Iterator<Item = u64> {
        self.first_page..self.first_page + self.page_count
    }
}

/// An ordered sequence of page accesses over a dataset of known size.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessTrace {
    events: Vec<AccessEvent>,
    /// Total size of the mapped region the trace refers to, in bytes.
    pub region_bytes: u64,
}

impl AccessTrace {
    /// Create an empty trace over a region of `region_bytes` bytes.
    pub fn new(region_bytes: u64) -> Self {
        Self {
            events: Vec::new(),
            region_bytes,
        }
    }

    /// Number of pages in the traced region.
    pub fn region_pages(&self) -> u64 {
        crate::pages_for(self.region_bytes as usize) as u64
    }

    /// Append an access covering `len` bytes starting at `offset`.
    pub fn push_range(&mut self, offset: u64, len: u64, is_write: bool) {
        if len == 0 {
            return;
        }
        let first_page = offset / PAGE_SIZE as u64;
        let last_page = (offset + len - 1) / PAGE_SIZE as u64;
        self.events.push(AccessEvent {
            first_page,
            page_count: last_page - first_page + 1,
            is_write,
        });
    }

    /// The recorded events in order.
    pub fn events(&self) -> &[AccessEvent] {
        &self.events
    }

    /// Total number of page touches (revisits counted every time).
    pub fn total_page_touches(&self) -> u64 {
        self.events.iter().map(|e| e.page_count).sum()
    }

    /// `true` when no accesses have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Build the trace of `sweeps` complete sequential read passes over a
    /// region of `region_bytes` bytes — the access pattern of batch gradient
    /// descent / L-BFGS / Lloyd's k-means, where every iteration scans the
    /// whole dataset front to back.
    ///
    /// `chunk_bytes` controls how large each recorded event is; the paper's
    /// workloads read row-by-row (6 272 bytes), but any chunk ≥ one page
    /// produces an equivalent page sequence.
    pub fn sequential_sweeps(region_bytes: u64, sweeps: u32, chunk_bytes: u64) -> Self {
        let mut trace = AccessTrace::new(region_bytes);
        let chunk = chunk_bytes.max(1);
        for _ in 0..sweeps {
            let mut offset = 0;
            while offset < region_bytes {
                let len = chunk.min(region_bytes - offset);
                trace.push_range(offset, len, false);
                offset += len;
            }
        }
        trace
    }

    /// Build a uniformly random access trace of `touches` single-page reads —
    /// the pattern of naive stochastic methods over mmap'd data.
    /// Deterministic in `seed`.
    pub fn random_touches(region_bytes: u64, touches: u64, seed: u64) -> Self {
        let mut trace = AccessTrace::new(region_bytes);
        let pages = trace.region_pages().max(1);
        // Small xorshift so m3-core does not need a rand dependency.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        for _ in 0..touches {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let page = state % pages;
            trace.push_range(page * PAGE_SIZE as u64, PAGE_SIZE as u64, false);
        }
        trace
    }
}

/// Records ranges into an [`AccessTrace`] as an algorithm runs.
#[derive(Debug)]
pub struct TraceRecorder {
    trace: AccessTrace,
    row_bytes: u64,
}

impl TraceRecorder {
    /// Create a recorder for a matrix of `rows × cols` `f64` elements.
    pub fn for_matrix(rows: usize, cols: usize) -> Self {
        let row_bytes = (cols * crate::ELEMENT_BYTES) as u64;
        Self {
            trace: AccessTrace::new(rows as u64 * row_bytes),
            row_bytes,
        }
    }

    /// Record a read of rows `start..end`.
    pub fn record_row_range(&mut self, start: usize, end: usize) {
        if end > start {
            self.trace.push_range(
                start as u64 * self.row_bytes,
                (end - start) as u64 * self.row_bytes,
                false,
            );
        }
    }

    /// Record a single row read.
    pub fn record_row(&mut self, row: usize) {
        self.record_row_range(row, row + 1);
    }

    /// Finish recording and return the trace.
    pub fn finish(self) -> AccessTrace {
        self.trace
    }
}

/// A thread-safe [`TraceRecorder`], shareable across the parallel sweeps an
/// [`crate::exec::ExecContext`] drives.
///
/// Workers lock per recorded chunk, so the event *order* under parallel
/// execution reflects actual completion order — which is exactly the
/// nondeterminism a real parallel mmap workload exhibits.  The page *set* is
/// deterministic.
#[derive(Debug)]
pub struct AccessTracer {
    inner: std::sync::Mutex<TraceRecorder>,
}

impl AccessTracer {
    /// Create a tracer for a matrix of `rows × cols` `f64` elements.
    pub fn for_matrix(rows: usize, cols: usize) -> Self {
        Self {
            inner: std::sync::Mutex::new(TraceRecorder::for_matrix(rows, cols)),
        }
    }

    /// Record a read of rows `start..end`.
    pub fn record_row_range(&self, start: usize, end: usize) {
        self.inner
            .lock()
            .expect("tracer lock poisoned")
            .record_row_range(start, end);
    }

    /// A copy of the trace recorded so far.
    pub fn snapshot(&self) -> AccessTrace {
        self.inner
            .lock()
            .expect("tracer lock poisoned")
            .trace
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_range_computes_page_spans() {
        let mut t = AccessTrace::new(3 * PAGE_SIZE as u64);
        t.push_range(0, 10, false);
        t.push_range(PAGE_SIZE as u64 - 1, 2, true);
        t.push_range(0, 0, false); // ignored
        assert_eq!(t.events().len(), 2);
        assert_eq!(
            t.events()[0],
            AccessEvent {
                first_page: 0,
                page_count: 1,
                is_write: false
            }
        );
        assert_eq!(
            t.events()[1],
            AccessEvent {
                first_page: 0,
                page_count: 2,
                is_write: true
            }
        );
        assert_eq!(t.total_page_touches(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn event_pages_iterates_span() {
        let e = AccessEvent {
            first_page: 4,
            page_count: 3,
            is_write: false,
        };
        assert_eq!(e.pages().collect::<Vec<_>>(), vec![4, 5, 6]);
    }

    #[test]
    fn sequential_sweeps_cover_region_each_pass() {
        let region = 10 * PAGE_SIZE as u64;
        let t = AccessTrace::sequential_sweeps(region, 3, PAGE_SIZE as u64);
        assert_eq!(t.region_pages(), 10);
        assert_eq!(t.total_page_touches(), 30);
        // First event of each sweep starts at page 0.
        assert_eq!(t.events()[0].first_page, 0);
        assert_eq!(t.events()[10].first_page, 0);
    }

    #[test]
    fn sequential_sweeps_handle_partial_tail_chunk() {
        let region = PAGE_SIZE as u64 + 100;
        let t = AccessTrace::sequential_sweeps(region, 1, PAGE_SIZE as u64);
        assert_eq!(t.region_pages(), 2);
        // One full-page chunk (page 0) plus one 100-byte tail chunk (page 1).
        assert_eq!(t.total_page_touches(), 2);
    }

    #[test]
    fn random_touches_is_deterministic_and_bounded() {
        let region = 64 * PAGE_SIZE as u64;
        let a = AccessTrace::random_touches(region, 100, 7);
        let b = AccessTrace::random_touches(region, 100, 7);
        let c = AccessTrace::random_touches(region, 100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.events().iter().all(|e| e.first_page < 64));
        assert_eq!(a.total_page_touches(), 100);
    }

    #[test]
    fn tracer_is_shareable_and_snapshots() {
        let tracer = std::sync::Arc::new(AccessTracer::for_matrix(100, 784));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let tracer = std::sync::Arc::clone(&tracer);
                scope.spawn(move || tracer.record_row_range(t * 25, (t + 1) * 25));
            }
        });
        let trace = tracer.snapshot();
        assert_eq!(trace.events().len(), 4);
        // 25 rows × 6 272 bytes per row per event.
        assert_eq!(trace.region_bytes, 100 * 784 * 8);
    }

    #[test]
    fn recorder_tracks_row_ranges() {
        let mut rec = TraceRecorder::for_matrix(100, 784);
        rec.record_row(0);
        rec.record_row_range(10, 20);
        rec.record_row_range(5, 5); // empty, ignored
        let trace = rec.finish();
        assert_eq!(trace.events().len(), 2);
        assert_eq!(trace.region_bytes, 100 * 784 * 8);
        // Row 0 is 6 272 bytes = 2 pages.
        assert_eq!(trace.events()[0].page_count, 2);
    }
}
