//! Hand-rolled CRC32 (IEEE 802.3, the zlib/gzip polynomial) used to
//! checksum container sections.
//!
//! The workspace vendors no general-purpose crates, so the checksum lives
//! here: a 256-entry table computed at first use, a streaming [`Crc32`]
//! hasher for writers that produce a section incrementally (the dataset
//! builder streams rows through a `BufWriter`), and a one-shot [`crc32`]
//! for verifying an already-mapped section.  CRC32 is not cryptographic —
//! the threat model is torn writes, bit rot and truncation, not an
//! adversary forging artifacts — and it verifies at memory bandwidth,
//! which matters because the serve registry checksums every artifact
//! before publishing a swap.

use std::sync::OnceLock;

/// The reflected IEEE polynomial, as used by zlib, gzip and PNG.
const POLYNOMIAL: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLYNOMIAL
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// A streaming CRC32 hasher.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feed `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = table();
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far (the hasher stays usable).
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(bytes);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check values (same as zlib's crc32()).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut h = Crc32::default();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(&data));
        // finish() is non-destructive.
        assert_eq!(h.finish(), crc32(&data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0x5Au8; 4096];
        let clean = crc32(&data);
        data[1234] ^= 0x10;
        assert_ne!(crc32(&data), clean);
    }
}
