//! The paper's `mmapAlloc` helper.
//!
//! Table 1 of the M3 paper shows the entirety of the change needed to move an
//! mlpack algorithm from in-memory to out-of-core data:
//!
//! ```text
//! // Original                      // M3
//! Mat data;                        double *m = mmapAlloc(file, rows * cols);
//!                                  Mat data(m, rows, cols);
//! ```
//!
//! [`mmap_alloc`] and [`mmap_alloc_mut`] are the Rust equivalents.  They map
//! `rows × cols` little-endian `f64` values from a file and return a matrix
//! that implements [`crate::RowStore`], so it drops into any algorithm that
//! previously took an in-memory [`m3_linalg::DenseMatrix`].

use std::path::Path;

use crate::error::Result;
use crate::mmap::{MmapMatrix, MmapMatrixMut};

/// Memory-map an existing raw matrix file read-only.
///
/// Equivalent to the paper's `mmapAlloc(file, rows * cols)` when the dataset
/// already exists on disk.  The returned [`MmapMatrix`] behaves exactly like
/// an in-memory matrix of the same shape.
///
/// # Errors
/// Fails when the file is missing, smaller than `rows * cols * 8` bytes, or
/// cannot be mapped.
pub fn mmap_alloc(path: impl AsRef<Path>, rows: usize, cols: usize) -> Result<MmapMatrix> {
    MmapMatrix::open(path, rows, cols)
}

/// Create (or resize) a raw matrix file and memory-map it read-write.
///
/// This is the "allocation" direction of `mmapAlloc`: instead of
/// `malloc(rows * cols * 8)`, the bytes live in a file and the OS decides
/// which pages reside in RAM.  Use it to build datasets larger than memory,
/// then reopen them with [`mmap_alloc`] for training.
///
/// # Errors
/// Fails when the file cannot be created, resized or mapped.
pub fn mmap_alloc_mut(path: impl AsRef<Path>, rows: usize, cols: usize) -> Result<MmapMatrixMut> {
    MmapMatrixMut::create(path, rows, cols)
}

/// Copy an in-memory matrix into a new memory-mapped file and return the
/// read-only mapping.  Handy in tests and examples that want to demonstrate
/// the in-memory vs. memory-mapped equivalence on the same data.
///
/// # Errors
/// Propagates file-creation and flush failures.
pub fn persist_matrix(
    path: impl AsRef<Path>,
    matrix: &m3_linalg::DenseMatrix,
) -> Result<MmapMatrix> {
    let mut mapped = MmapMatrixMut::create(&path, matrix.n_rows(), matrix.n_cols())?;
    mapped.as_mut_slice().copy_from_slice(matrix.as_slice());
    mapped.into_read_only()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::RowStore;
    use m3_linalg::DenseMatrix;
    use tempfile::tempdir;

    #[test]
    fn alloc_mut_then_alloc_read_only() {
        let dir = tempdir().unwrap();
        let p = dir.path().join("table1.m3");
        let (rows, cols) = (16, 4);

        let mut data = mmap_alloc_mut(&p, rows, cols).unwrap();
        for r in 0..rows {
            for c in 0..cols {
                data.row_mut(r)[c] = (r * cols + c) as f64;
            }
        }
        data.flush().unwrap();

        let data = mmap_alloc(&p, rows, cols).unwrap();
        assert_eq!(data.shape(), (rows, cols));
        assert_eq!(data.row(3)[2], 14.0);
    }

    #[test]
    fn persist_matrix_round_trips_in_memory_data() {
        let dir = tempdir().unwrap();
        let p = dir.path().join("persisted.m3");
        let m = DenseMatrix::from_vec((0..20).map(|i| i as f64 * 0.5).collect(), 5, 4).unwrap();
        let mapped = persist_matrix(&p, &m).unwrap();
        assert_eq!(mapped.as_slice(), m.as_slice());
        assert_eq!(mapped.shape(), m.shape());
    }

    #[test]
    fn table1_minimal_change_shape() {
        // The point of Table 1: the only difference between the in-memory and
        // the M3 version is the allocation line; the "algorithm" (here a row
        // sum) is byte-for-byte identical because both implement RowStore.
        fn algorithm<S: RowStore>(data: &S) -> f64 {
            (0..data.n_rows())
                .map(|r| data.row(r).iter().sum::<f64>())
                .sum()
        }

        let dir = tempdir().unwrap();
        let in_memory = DenseMatrix::from_vec(vec![1.0; 12], 3, 4).unwrap();
        let mapped = persist_matrix(dir.path().join("t1.m3"), &in_memory).unwrap();

        assert_eq!(algorithm(&in_memory), algorithm(&mapped));
    }

    #[test]
    fn mmap_alloc_missing_file_errors() {
        let dir = tempdir().unwrap();
        assert!(mmap_alloc(dir.path().join("nope.m3"), 2, 2).is_err());
    }
}
