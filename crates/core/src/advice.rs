//! Access-pattern hints forwarded to the operating system via `madvise(2)`.
//!
//! The M3 paper attributes much of the mmap approach's efficiency to
//! OS-level optimisations — read-ahead for sequential scans and LRU caching —
//! and its future work calls for studying how access patterns (sequential vs.
//! random) affect performance.  [`AccessPattern`] is how callers describe the
//! pattern of an upcoming pass so the kernel can prepare.

/// A declarative description of how a mapped region is about to be accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessPattern {
    /// No special expectation (the kernel default, `MADV_NORMAL`).
    #[default]
    Normal,
    /// The region will be scanned front to back (`MADV_SEQUENTIAL`), so the
    /// kernel should read ahead aggressively and drop pages behind the scan.
    /// This is the pattern of every batch-gradient and k-means pass.
    Sequential,
    /// Accesses will jump around (`MADV_RANDOM`); read-ahead would only
    /// pollute the page cache.  This is the pattern of stochastic methods
    /// such as SGD with row sampling.
    Random,
    /// The region will be needed soon (`MADV_WILLNEED`); the kernel may start
    /// faulting it in asynchronously.
    WillNeed,
    /// The region will not be needed again soon (`MADV_DONTNEED`); the kernel
    /// may reclaim its pages immediately.
    DontNeed,
}

impl AccessPattern {
    /// All defined patterns, useful for ablation sweeps.
    pub const ALL: [AccessPattern; 5] = [
        AccessPattern::Normal,
        AccessPattern::Sequential,
        AccessPattern::Random,
        AccessPattern::WillNeed,
        AccessPattern::DontNeed,
    ];

    /// A short lowercase name for reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            AccessPattern::Normal => "normal",
            AccessPattern::Sequential => "sequential",
            AccessPattern::Random => "random",
            AccessPattern::WillNeed => "willneed",
            AccessPattern::DontNeed => "dontneed",
        }
    }

    /// Parse a pattern from its [`name`](Self::name) (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "normal" => Some(AccessPattern::Normal),
            "sequential" | "seq" => Some(AccessPattern::Sequential),
            "random" | "rand" => Some(AccessPattern::Random),
            "willneed" => Some(AccessPattern::WillNeed),
            "dontneed" => Some(AccessPattern::DontNeed),
            _ => None,
        }
    }

    /// Whether the OS is expected to enable aggressive read-ahead under this
    /// hint.  Mirrored by the `m3-vmsim` read-ahead model so simulated and
    /// real behaviour stay in sync.
    pub fn enables_readahead(&self) -> bool {
        matches!(
            self,
            AccessPattern::Sequential | AccessPattern::WillNeed | AccessPattern::Normal
        )
    }

    /// Convert to the `memmap2` advice value (Unix only).
    #[cfg(unix)]
    pub(crate) fn to_memmap_advice(self) -> memmap2::Advice {
        match self {
            AccessPattern::Normal => memmap2::Advice::Normal,
            AccessPattern::Sequential => memmap2::Advice::Sequential,
            AccessPattern::Random => memmap2::Advice::Random,
            AccessPattern::WillNeed => memmap2::Advice::WillNeed,
            // DontNeed is destructive in memmap2's classification (it lives in
            // UncheckedAdvice); Normal is the closest advice that is safe to
            // issue through the checked API.
            AccessPattern::DontNeed => memmap2::Advice::Normal,
        }
    }
}

impl std::fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_roundtrip() {
        for p in AccessPattern::ALL {
            assert_eq!(AccessPattern::from_name(p.name()), Some(p));
        }
        assert_eq!(
            AccessPattern::from_name("SEQ"),
            Some(AccessPattern::Sequential)
        );
        assert_eq!(AccessPattern::from_name("bogus"), None);
    }

    #[test]
    fn default_is_normal() {
        assert_eq!(AccessPattern::default(), AccessPattern::Normal);
    }

    #[test]
    fn readahead_classification() {
        assert!(AccessPattern::Sequential.enables_readahead());
        assert!(AccessPattern::Normal.enables_readahead());
        assert!(!AccessPattern::Random.enables_readahead());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(AccessPattern::Sequential.to_string(), "sequential");
    }
}
