//! Error type shared by all `m3-core` operations.

use std::path::PathBuf;

/// Errors produced when creating, mapping or reading M3 datasets.
#[derive(Debug)]
pub enum CoreError {
    /// An underlying I/O operation failed.
    Io {
        /// The file involved, when known.
        path: Option<PathBuf>,
        /// The operating-system error.
        source: std::io::Error,
    },
    /// A file's size does not match the shape it was opened with.
    SizeMismatch {
        /// The file involved.
        path: PathBuf,
        /// Bytes expected from the requested shape.
        expected_bytes: u64,
        /// Bytes actually present.
        actual_bytes: u64,
    },
    /// A dataset file's header is malformed or has the wrong magic/version.
    BadHeader {
        /// Explanation of what was wrong.
        reason: String,
    },
    /// The mapped region is not aligned for `f64` access.
    Misaligned {
        /// The address that failed the alignment check.
        address: usize,
    },
    /// A shape was requested that would overflow `usize` or is otherwise
    /// unrepresentable.
    InvalidShape {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
    },
    /// A container section's stored checksum does not match its bytes —
    /// the artifact is corrupt (torn write, bit rot, truncation).
    ChecksumMismatch {
        /// The artifact that failed verification.
        path: PathBuf,
        /// The section that failed (`features`, `indptr`, `payload`, ...).
        section: String,
        /// The checksum recorded in the header.
        expected: u32,
        /// The checksum of the bytes actually on disk.
        found: u32,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Io { path, source } => match path {
                Some(p) => write!(f, "I/O error on {}: {source}", p.display()),
                None => write!(f, "I/O error: {source}"),
            },
            CoreError::SizeMismatch {
                path,
                expected_bytes,
                actual_bytes,
            } => write!(
                f,
                "{} is {actual_bytes} bytes but the requested shape needs {expected_bytes} bytes",
                path.display()
            ),
            CoreError::BadHeader { reason } => write!(f, "bad dataset header: {reason}"),
            CoreError::Misaligned { address } => {
                write!(f, "mapped address {address:#x} is not 8-byte aligned")
            }
            CoreError::InvalidShape { rows, cols } => {
                write!(f, "invalid matrix shape {rows}x{cols}")
            }
            CoreError::ChecksumMismatch {
                path,
                section,
                expected,
                found,
            } => write!(
                f,
                "{}: section '{section}' checksum mismatch (header says {expected:#010x}, \
                 bytes hash to {found:#010x}) — artifact is corrupt",
                path.display()
            ),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CoreError {
    fn from(e: std::io::Error) -> Self {
        CoreError::Io {
            path: None,
            source: e,
        }
    }
}

impl CoreError {
    /// Attach a path to a bare I/O error for better diagnostics.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        CoreError::Io {
            path: Some(path.into()),
            source,
        }
    }
}

/// Result alias used throughout `m3-core`.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_path_and_sizes() {
        let e = CoreError::SizeMismatch {
            path: PathBuf::from("/tmp/x.m3"),
            expected_bytes: 800,
            actual_bytes: 400,
        };
        let s = e.to_string();
        assert!(s.contains("/tmp/x.m3") && s.contains("800") && s.contains("400"));
    }

    #[test]
    fn io_error_carries_source() {
        let e = CoreError::io(
            "/tmp/y",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.to_string().contains("/tmp/y"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn from_io_error_without_path() {
        let e: CoreError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn misaligned_and_shape_display() {
        assert!(CoreError::Misaligned { address: 0x123 }
            .to_string()
            .contains("0x123"));
        assert!(CoreError::InvalidShape { rows: 1, cols: 2 }
            .to_string()
            .contains("1x2"));
        assert!(CoreError::BadHeader {
            reason: "nope".into()
        }
        .to_string()
        .contains("nope"));
    }
}
