//! Memory-mapped CSR adjacency storage for graphs (`M3GRPH01`).
//!
//! The M3 paper's scenario-diversity claim is that memory mapping scales
//! *beyond ML* — PageRank and connected components are its headline non-ML
//! workloads.  This module gives graphs the same container discipline the
//! ML pipeline got in [`crate::sparse`]: a graph **is** a CSR matrix with no
//! values section, so the on-disk format is the `M3CSRF01` layout minus the
//! value and label sections.
//!
//! ## On-disk layout (version 1)
//!
//! ```text
//! offset 0              : 4096-byte header (magic "M3GRPH01", version,
//!                         flags, n_nodes, n_edges, section offsets)
//! indptr_offset  (page-aligned): (n_nodes + 1) × u64  adjacency offsets
//! indices_offset (page-aligned): n_edges × u32        neighbor node ids
//! ```
//!
//! All integers are little-endian.  Page-rounding the sections keeps the
//! arrays page- and element-aligned once mapped and means a sweep's
//! `madvise` hints act on whole sections.  The spare tail of the header
//! page carries the shared CRC32 checksum block
//! ([`crate::container::encode_checksums`]), and the builder publishes
//! through the same faults-routed `.tmp` + fsync + rename sequence as every
//! other container, so torn graph files are never visible under the final
//! path.

use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use memmap2::{Mmap, MmapMut};

use crate::container::{
    decode_preamble, encode_checksums, section_slice, SectionChecksum, CHECKSUM_BLOCK_OFFSET,
};
use crate::error::{CoreError, Result};
use crate::{faults, AccessPattern, PAGE_SIZE};

/// Magic bytes identifying an M3 binary graph file.
pub const GRAPH_MAGIC: [u8; 8] = *b"M3GRPH01";
/// Current on-disk graph format version.
pub const GRAPH_FORMAT_VERSION: u32 = 1;
/// Size of the fixed graph header block (one page).
pub const GRAPH_HEADER_BYTES: usize = PAGE_SIZE;

const INDPTR_BYTES: usize = std::mem::size_of::<u64>();
const INDEX_BYTES: usize = std::mem::size_of::<u32>();

/// A graph in compressed-sparse-row adjacency form: `indptr` (one `u64` per
/// node plus one) and `indices` (one `u32` neighbor id per edge) — exactly
/// [`crate::sparse::SparseRowStore`] without the values array.
///
/// The accessors hand back whole-array slices so chunked sweeps can slice a
/// node range out of each without per-node indirection; `indptr` values are
/// **global** edge offsets.  Implemented by the mmap-backed [`GraphFile`]
/// and by `m3-graph`'s in-memory `CsrGraph`, so every graph algorithm is
/// backing-agnostic the same way training is.
pub trait AdjacencyStore {
    /// Number of nodes.
    fn n_nodes(&self) -> usize;

    /// Number of (directed) edges stored.
    fn n_edges(&self) -> usize;

    /// The adjacency-offset array (`n_nodes + 1` entries of global offsets).
    fn indptr(&self) -> &[u64];

    /// The neighbor id of every stored edge.
    fn indices(&self) -> &[u32];

    /// Hint the expected access pattern for an upcoming pass; memory-mapped
    /// stores forward this to `madvise(2)`, in-memory stores ignore it.
    fn advise(&self, _pattern: AccessPattern) {}

    /// `true` when the graph has no nodes.
    fn is_empty(&self) -> bool {
        self.n_nodes() == 0
    }

    /// Number of out-edges of `node`.
    ///
    /// # Panics
    /// Panics when `node >= n_nodes()`.
    fn out_degree(&self, node: usize) -> usize {
        let indptr = self.indptr();
        (indptr[node + 1] - indptr[node]) as usize
    }

    /// The (sorted) neighbor ids of `node`.
    ///
    /// # Panics
    /// Panics when `node >= n_nodes()` or the adjacency offsets are corrupt.
    fn neighbors(&self, node: usize) -> &[u32] {
        assert!(
            node < self.n_nodes(),
            "node {node} out of bounds ({})",
            self.n_nodes()
        );
        let indptr = self.indptr();
        &self.indices()[indptr[node] as usize..indptr[node + 1] as usize]
    }

    /// Borrow nodes `start..end` as an [`AdjChunk`].
    ///
    /// # Panics
    /// Panics when the range is out of bounds or the adjacency offsets are
    /// corrupt.
    fn adj_chunk(&self, start: usize, end: usize) -> AdjChunk<'_> {
        assert!(
            start <= end && end <= self.n_nodes(),
            "node range out of bounds"
        );
        let indptr = &self.indptr()[start..=end];
        let lo = indptr[0] as usize;
        let hi = indptr[indptr.len() - 1] as usize;
        AdjChunk {
            start_row: start,
            end_row: end,
            indptr,
            indices: &self.indices()[lo..hi],
        }
    }
}

impl<T: AdjacencyStore + ?Sized> AdjacencyStore for &T {
    fn n_nodes(&self) -> usize {
        (**self).n_nodes()
    }
    fn n_edges(&self) -> usize {
        (**self).n_edges()
    }
    fn indptr(&self) -> &[u64] {
        (**self).indptr()
    }
    fn indices(&self) -> &[u32] {
        (**self).indices()
    }
    fn advise(&self, pattern: AccessPattern) {
        (**self).advise(pattern)
    }
}

impl<T: AdjacencyStore + ?Sized> AdjacencyStore for Box<T> {
    fn n_nodes(&self) -> usize {
        (**self).n_nodes()
    }
    fn n_edges(&self) -> usize {
        (**self).n_edges()
    }
    fn indptr(&self) -> &[u64] {
        (**self).indptr()
    }
    fn indices(&self) -> &[u32] {
        (**self).indices()
    }
    fn advise(&self, pattern: AccessPattern) {
        (**self).advise(pattern)
    }
}

/// A contiguous block of adjacency rows borrowed from an [`AdjacencyStore`]
/// — the graph analogue of [`crate::sparse::SparseRowChunk`], produced by
/// the `ExecContext` graph sweep drivers.
///
/// `indptr` keeps its **global** edge offsets while `indices` is rebased to
/// the chunk (`indices[0]` is edge `indptr[0]` of the store), the same
/// convention the `m3-linalg` sparse kernels take.
#[derive(Debug, Clone, Copy)]
pub struct AdjChunk<'a> {
    /// Index of the first node in the chunk.
    pub start_row: usize,
    /// One past the last node in the chunk.
    pub end_row: usize,
    /// Adjacency offsets, `n_rows() + 1` entries of global offsets.
    pub indptr: &'a [u64],
    /// Neighbor ids of the chunk's edges.
    pub indices: &'a [u32],
}

impl<'a> AdjChunk<'a> {
    /// Number of nodes in the chunk.
    pub fn n_rows(&self) -> usize {
        self.end_row - self.start_row
    }

    /// Number of edges in the chunk.
    pub fn n_edges(&self) -> usize {
        self.indices.len()
    }

    /// The neighbor ids of chunk-local node `i`.
    ///
    /// # Panics
    /// Panics when `i >= n_rows()`.
    pub fn row(&self, i: usize) -> &'a [u32] {
        assert!(
            i < self.n_rows(),
            "row {i} out of bounds ({})",
            self.n_rows()
        );
        let base = self.indptr[0];
        let start = (self.indptr[i] - base) as usize;
        let end = (self.indptr[i + 1] - base) as usize;
        &self.indices[start..end]
    }

    /// Iterate over the chunk's adjacency rows with their global node ids.
    pub fn rows_with_index(&self) -> impl Iterator<Item = (usize, &'a [u32])> + '_ {
        (0..self.n_rows()).map(move |i| (self.start_row + i, self.row(i)))
    }
}

/// Parsed binary-graph header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphHeader {
    /// On-disk format version.
    pub version: u32,
    /// Number of nodes.
    pub n_nodes: u64,
    /// Number of (directed) edges.
    pub n_edges: u64,
    /// Byte offset of the adjacency-offset section.
    pub indptr_offset: u64,
    /// Byte offset of the neighbor-id section.
    pub indices_offset: u64,
}

impl GraphHeader {
    /// Construct the header (and page-rounded section layout) for a graph of
    /// the given size.
    ///
    /// # Panics
    /// Panics when the size is so large its section layout overflows `u64`
    /// (unreachable for graphs that fit on disk); untrusted size fields read
    /// from files go through the checked path in [`decode`](Self::decode)
    /// instead.
    pub fn new(n_nodes: u64, n_edges: u64) -> Self {
        Self::checked_new(n_nodes, n_edges)
            .expect("graph shape overflows the on-disk section layout")
    }

    /// [`new`](Self::new) with overflow-checked arithmetic, for *untrusted*
    /// size fields read from a file: `None` when the layout would not even
    /// fit in a `u64` (such a file cannot exist on disk).
    fn checked_new(n_nodes: u64, n_edges: u64) -> Option<Self> {
        let round = |bytes: u64| {
            bytes
                .checked_add(PAGE_SIZE as u64 - 1)
                .map(|b| b / PAGE_SIZE as u64 * PAGE_SIZE as u64)
        };
        let indptr_offset = GRAPH_HEADER_BYTES as u64;
        let indices_offset = round(
            n_nodes
                .checked_add(1)?
                .checked_mul(INDPTR_BYTES as u64)?
                .checked_add(indptr_offset)?,
        )?;
        // The index section (and the usize conversions open() performs)
        // must not overflow either.
        indices_offset.checked_add(n_edges.checked_mul(INDEX_BYTES as u64)?)?;
        Some(Self {
            version: GRAPH_FORMAT_VERSION,
            n_nodes,
            n_edges,
            indptr_offset,
            indices_offset,
        })
    }

    /// Total file size implied by this header.
    pub fn file_bytes(&self) -> u64 {
        self.indices_offset + self.n_edges * INDEX_BYTES as u64
    }

    /// Serialise into the fixed-size header block.
    pub fn encode(&self) -> [u8; 48] {
        let mut buf = [0u8; 48];
        buf[0..8].copy_from_slice(&GRAPH_MAGIC);
        buf[8..12].copy_from_slice(&self.version.to_le_bytes());
        buf[12..16].copy_from_slice(&0u32.to_le_bytes()); // flags, reserved
        buf[16..24].copy_from_slice(&self.n_nodes.to_le_bytes());
        buf[24..32].copy_from_slice(&self.n_edges.to_le_bytes());
        buf[32..40].copy_from_slice(&self.indptr_offset.to_le_bytes());
        buf[40..48].copy_from_slice(&self.indices_offset.to_le_bytes());
        buf
    }

    /// Parse a header from the first bytes of a file and check that every
    /// section is internally consistent.
    ///
    /// # Errors
    /// Returns [`CoreError::BadHeader`] on a wrong magic, an unsupported
    /// version, unknown flags, or offsets that disagree with the sizes.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let bad = |reason: String| CoreError::BadHeader { reason };
        let flags = decode_preamble(bytes, &GRAPH_MAGIC, GRAPH_FORMAT_VERSION, 48)?;
        if flags != 0 {
            return Err(bad(format!("unknown graph flags {flags:#x}")));
        }
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let header = Self {
            version: GRAPH_FORMAT_VERSION,
            n_nodes: u64_at(16),
            n_edges: u64_at(24),
            indptr_offset: u64_at(32),
            indices_offset: u64_at(40),
        };
        // Recompute the section layout with checked arithmetic — the size
        // fields are untrusted, and a crafted n_nodes/n_edges near u64::MAX
        // must surface as BadHeader, not as an overflow panic (or, worse,
        // wrap around and validate).
        let expected = Self::checked_new(header.n_nodes, header.n_edges)
            .ok_or_else(|| bad("graph size overflows the section layout".to_string()))?;
        if header != expected {
            return Err(bad(
                "section offsets disagree with the sizes in the header".to_string()
            ));
        }
        if header.n_nodes > u32::MAX as u64 {
            return Err(bad(format!(
                "n_nodes {} does not fit the u32 node-id type",
                header.n_nodes
            )));
        }
        Ok(header)
    }
}

/// A read-only memory-mapped binary graph file.
///
/// Opening performs only O(1) header validation — the adjacency sections
/// are *not* scanned, so a multi-hundred-million-edge graph opens in
/// microseconds and pages fault in lazily as a sweep walks node ranges.
/// Malformed adjacency offsets surface as panics at access time (the same
/// trust model as [`crate::sparse::CsrFile`]).  Cloning shares the mapping
/// behind an [`Arc`].
#[derive(Debug, Clone)]
pub struct GraphFile {
    map: Arc<Mmap>,
    path: PathBuf,
    header: GraphHeader,
}

impl GraphFile {
    /// Memory-map an existing binary graph file.
    ///
    /// # Errors
    /// Fails when the file cannot be opened or mapped, its header is
    /// malformed, or its size disagrees with the header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .open(&path)
            .map_err(|e| CoreError::io(&path, e))?;
        // SAFETY: read-only mapping, never mutably aliased by this process.
        let map = unsafe { Mmap::map(&file) }.map_err(|e| CoreError::io(&path, e))?;
        let header = GraphHeader::decode(&map[..map.len().min(GRAPH_HEADER_BYTES)])?;
        let actual = map.len() as u64;
        if actual < header.file_bytes() {
            return Err(CoreError::SizeMismatch {
                path,
                expected_bytes: header.file_bytes(),
                actual_bytes: actual,
            });
        }
        let this = Self {
            map: Arc::new(map),
            path,
            header,
        };
        // Validate section bounds/alignment once so the accessors are
        // panic-free slices, and sanity-check the indptr endpoints (the two
        // entries we can check without faulting in the whole section).
        let indptr = this.try_indptr()?;
        unsafe {
            section_slice::<u32>(&this.map[..], this.header.indices_offset, this.n_edges())?;
        }
        if indptr[0] != 0 || indptr[indptr.len() - 1] != this.header.n_edges {
            return Err(CoreError::BadHeader {
                reason: format!(
                    "indptr endpoints ({}, {}) disagree with n_edges {}",
                    indptr[0],
                    indptr[indptr.len() - 1],
                    this.header.n_edges
                ),
            });
        }
        if crate::container::verify_on_open() {
            this.verify()?;
        }
        Ok(this)
    }

    /// Open and verify every section checksum — [`GraphFile::open`] followed
    /// by [`GraphFile::verify`].
    ///
    /// # Errors
    /// Everything `open` can fail with, plus
    /// [`CoreError::ChecksumMismatch`] for a corrupted section and
    /// [`CoreError::BadHeader`] for a file carrying no checksum block.
    pub fn open_verified(path: impl AsRef<Path>) -> Result<Self> {
        let file = Self::open(path)?;
        file.verify()?;
        Ok(file)
    }

    /// Re-hash every section against the header's checksum block.  Reads
    /// (faults in) the whole file, unlike `open`; also run automatically
    /// when `M3_VERIFY` is set.
    ///
    /// # Errors
    /// [`CoreError::ChecksumMismatch`] naming the corrupt section, or
    /// [`CoreError::BadHeader`] when the file carries no checksum block.
    pub fn verify(&self) -> Result<()> {
        crate::container::verify_checksums(&self.map, &self.path)
    }

    fn try_indptr(&self) -> Result<&[u64]> {
        // SAFETY: u64 is plain-old-data.
        unsafe { section_slice(&self.map[..], self.header.indptr_offset, self.n_nodes() + 1) }
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The parsed header.
    pub fn header(&self) -> &GraphHeader {
        &self.header
    }

    /// Forward an access-pattern hint for the whole mapping to the kernel
    /// (`madvise`).  Best-effort: errors are ignored, as with the dense and
    /// sparse stores.
    pub fn advise_pattern(&self, pattern: AccessPattern) {
        #[cfg(unix)]
        {
            let _ = self.map.advise(pattern.to_memmap_advice());
        }
        #[cfg(not(unix))]
        {
            let _ = pattern;
        }
    }
}

impl AdjacencyStore for GraphFile {
    fn n_nodes(&self) -> usize {
        self.header.n_nodes as usize
    }
    fn n_edges(&self) -> usize {
        self.header.n_edges as usize
    }
    fn indptr(&self) -> &[u64] {
        self.try_indptr().expect("indptr section validated at open")
    }
    fn indices(&self) -> &[u32] {
        // SAFETY: validated at open; u32 is plain-old-data.
        unsafe { section_slice(&self.map[..], self.header.indices_offset, self.n_edges()) }
            .expect("index section validated at open")
    }
    fn advise(&self, pattern: AccessPattern) {
        self.advise_pattern(pattern);
    }
}

/// Streaming writer for the binary graph format.
///
/// The file is created at its final (page-rounded) size up front, mapped
/// read-write, and filled one adjacency row at a time — constant memory
/// regardless of the graph size, the same discipline as
/// [`crate::CsrFileBuilder`].  Node and edge counts must be known in
/// advance (the RMAT generator's dedup pass provides exact totals).
///
/// The builder works on a `.tmp` sibling of the target path;
/// [`GraphFileBuilder::finish`] checksums the sections, fsyncs and
/// atomically renames into place, so a crash mid-build never leaves a torn
/// artifact visible.  An abandoned builder removes its temporary file on
/// drop.
#[derive(Debug)]
pub struct GraphFileBuilder {
    map: Option<MmapMut>,
    file: Option<File>,
    path: PathBuf,
    tmp: PathBuf,
    header: GraphHeader,
    nodes_pushed: usize,
    edges_pushed: usize,
    finished: bool,
}

impl GraphFileBuilder {
    /// Create (or truncate) `path` sized for `n_nodes` nodes with exactly
    /// `n_edges` directed edges.
    ///
    /// # Errors
    /// Fails when the file cannot be created, sized or mapped, or when
    /// `n_nodes` does not fit the format's `u32` node-id type.
    pub fn create(path: impl AsRef<Path>, n_nodes: usize, n_edges: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if n_nodes > u32::MAX as usize {
            return Err(CoreError::InvalidShape {
                rows: n_nodes,
                cols: n_nodes,
            });
        }
        let tmp = faults::tmp_sibling(&path);
        let header = GraphHeader::new(n_nodes as u64, n_edges as u64);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| CoreError::io(&tmp, e))?;
        faults::set_len(&file, header.file_bytes(), &tmp).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            CoreError::io(&tmp, e)
        })?;
        // SAFETY: we hold the only mapping of a file we just created.
        let mut map = unsafe { MmapMut::map_mut(&file) }.map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            CoreError::io(&tmp, e)
        })?;
        map[..48].copy_from_slice(&header.encode());
        let mut builder = Self {
            map: Some(map),
            file: Some(file),
            path,
            tmp,
            header,
            nodes_pushed: 0,
            edges_pushed: 0,
            finished: false,
        };
        builder.write_indptr(0, 0);
        Ok(builder)
    }

    fn map(&self) -> &MmapMut {
        self.map.as_ref().expect("builder already finished")
    }

    fn map_mut(&mut self) -> &mut MmapMut {
        self.map.as_mut().expect("builder already finished")
    }

    fn write_indptr(&mut self, node: usize, value: u64) {
        let offset = self.header.indptr_offset as usize + node * INDPTR_BYTES;
        self.map_mut()[offset..offset + INDPTR_BYTES].copy_from_slice(&value.to_le_bytes());
    }

    /// Append one node's adjacency row: strictly-increasing neighbor ids,
    /// each `< n_nodes`.  Empty rows are fine (isolated or dangling nodes).
    ///
    /// # Errors
    /// Fails when the node budget or edge budget declared at creation would
    /// be exceeded, or when the neighbor list is unsorted, has duplicates,
    /// or references a node out of range.
    pub fn push_node(&mut self, neighbors: &[u32]) -> Result<()> {
        let bad = |reason: String| CoreError::BadHeader { reason };
        if self.nodes_pushed >= self.header.n_nodes as usize {
            return Err(bad(format!(
                "node budget of {} exhausted",
                self.header.n_nodes
            )));
        }
        if self.edges_pushed + neighbors.len() > self.header.n_edges as usize {
            return Err(bad(format!(
                "edge budget of {} exhausted at node {}",
                self.header.n_edges, self.nodes_pushed
            )));
        }
        let node = self.nodes_pushed;
        let n_nodes = self.header.n_nodes;
        let mut previous: Option<u32> = None;
        for &t in neighbors {
            if t as u64 >= n_nodes {
                return Err(bad(format!(
                    "node {node}: neighbor {t} out of range ({n_nodes} nodes)"
                )));
            }
            if previous.is_some_and(|p| p >= t) {
                return Err(bad(format!(
                    "node {node}: neighbors must be strictly increasing"
                )));
            }
            previous = Some(t);
        }

        let idx_off = self.header.indices_offset as usize + self.edges_pushed * INDEX_BYTES;
        let map = self.map_mut();
        for (k, &t) in neighbors.iter().enumerate() {
            map[idx_off + k * INDEX_BYTES..idx_off + (k + 1) * INDEX_BYTES]
                .copy_from_slice(&t.to_le_bytes());
        }

        self.edges_pushed += neighbors.len();
        self.nodes_pushed += 1;
        let (node, edges) = (self.nodes_pushed, self.edges_pushed as u64);
        self.write_indptr(node, edges);
        Ok(())
    }

    /// Number of nodes pushed so far.
    pub fn nodes_pushed(&self) -> usize {
        self.nodes_pushed
    }

    /// Number of edges pushed so far.
    pub fn edges_pushed(&self) -> usize {
        self.edges_pushed
    }

    /// Checksum the sections, flush, fsync, atomically rename the temporary
    /// file into place and reopen it read-only.
    ///
    /// # Errors
    /// Fails when fewer nodes or edges were pushed than declared, or on
    /// flush/sync/rename/reopen I/O errors.  On failure the target path
    /// still holds whatever artifact (if any) was there before; the
    /// temporary file is removed when the builder drops.
    pub fn finish(mut self) -> Result<GraphFile> {
        if self.nodes_pushed != self.header.n_nodes as usize
            || self.edges_pushed != self.header.n_edges as usize
        {
            return Err(CoreError::BadHeader {
                reason: format!(
                    "declared {} nodes / {} edges but received {} / {}",
                    self.header.n_nodes, self.header.n_edges, self.nodes_pushed, self.edges_pushed
                ),
            });
        }
        let h = self.header;
        {
            let map = self.map_mut();
            let sections = [
                SectionChecksum::of(
                    "indptr",
                    map,
                    h.indptr_offset,
                    (h.n_nodes + 1) * INDPTR_BYTES as u64,
                ),
                SectionChecksum::of(
                    "indices",
                    map,
                    h.indices_offset,
                    h.n_edges * INDEX_BYTES as u64,
                ),
            ];
            let block = encode_checksums(&sections);
            map[CHECKSUM_BLOCK_OFFSET..CHECKSUM_BLOCK_OFFSET + block.len()].copy_from_slice(&block);
        }
        faults::flush_map(self.map(), &self.tmp).map_err(|e| CoreError::io(&self.tmp, e))?;
        let file = self.file.as_ref().expect("builder already finished");
        faults::sync_file(file, &self.tmp).map_err(|e| CoreError::io(&self.tmp, e))?;
        drop(self.map.take());
        drop(self.file.take());
        faults::rename(&self.tmp, &self.path).map_err(|e| CoreError::io(&self.tmp, e))?;
        if let Some(parent) = self.path.parent() {
            faults::sync_dir(parent).map_err(|e| CoreError::io(parent, e))?;
        }
        self.finished = true;
        GraphFile::open(&self.path)
    }
}

impl Drop for GraphFileBuilder {
    fn drop(&mut self) {
        if !self.finished {
            drop(self.map.take());
            drop(self.file.take());
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Persist any in-memory [`AdjacencyStore`] as a binary graph file and
/// reopen it memory-mapped — the graph analogue of
/// [`crate::sparse::persist_csr`].
///
/// # Errors
/// Fails on I/O errors or when the store violates an adjacency invariant
/// (unsorted or out-of-range neighbor lists).
pub fn persist_graph<G: AdjacencyStore + ?Sized>(
    path: impl AsRef<Path>,
    graph: &G,
) -> Result<GraphFile> {
    let mut builder = GraphFileBuilder::create(path, graph.n_nodes(), graph.n_edges())?;
    for node in 0..graph.n_nodes() {
        builder.push_node(graph.neighbors(node))?;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    /// Minimal in-memory store for exercising the trait defaults.
    struct VecGraph {
        indptr: Vec<u64>,
        indices: Vec<u32>,
    }

    impl AdjacencyStore for VecGraph {
        fn n_nodes(&self) -> usize {
            self.indptr.len() - 1
        }
        fn n_edges(&self) -> usize {
            self.indices.len()
        }
        fn indptr(&self) -> &[u64] {
            &self.indptr
        }
        fn indices(&self) -> &[u32] {
            &self.indices
        }
    }

    /// 0 → {1, 3}, 1 → {}, 2 → {0, 1, 3}, 3 → {2}.
    fn sample() -> VecGraph {
        VecGraph {
            indptr: vec![0, 2, 2, 5, 6],
            indices: vec![1, 3, 0, 1, 3, 2],
        }
    }

    #[test]
    fn header_round_trip_and_layout() {
        let h = GraphHeader::new(1_000_000, 80_000_000);
        assert_eq!(GraphHeader::decode(&h.encode()).unwrap(), h);
        assert_eq!(h.indptr_offset % PAGE_SIZE as u64, 0);
        assert_eq!(h.indices_offset % PAGE_SIZE as u64, 0);
        assert!(h.indices_offset >= h.indptr_offset + 1_000_001 * 8);
        assert_eq!(h.file_bytes(), h.indices_offset + 80_000_000 * 4);
    }

    #[test]
    fn bad_headers_are_rejected() {
        let h = GraphHeader::new(10, 7);
        let mut bytes = h.encode();
        bytes[0] = b'X';
        assert!(matches!(
            GraphHeader::decode(&bytes),
            Err(CoreError::BadHeader { .. })
        ));
        let mut bytes = h.encode();
        bytes[8] = 99; // version
        assert!(GraphHeader::decode(&bytes).is_err());
        let mut bytes = h.encode();
        bytes[12] = 1; // unknown flag
        assert!(GraphHeader::decode(&bytes).is_err());
        let mut bytes = h.encode();
        bytes[32] = 1; // corrupt indptr offset
        assert!(GraphHeader::decode(&bytes).is_err());
        assert!(GraphHeader::decode(&bytes[..20]).is_err());

        // Crafted sizes near u64::MAX must decode to BadHeader — checked
        // arithmetic, not overflow panics (debug) or wrap-around acceptance
        // (release).
        let mut crafted = h.encode();
        crafted[16..24].copy_from_slice(&u64::MAX.to_le_bytes()); // n_nodes
        assert!(matches!(
            GraphHeader::decode(&crafted),
            Err(CoreError::BadHeader { .. })
        ));
        let mut crafted = h.encode();
        crafted[24..32].copy_from_slice(&(u64::MAX / 4).to_le_bytes()); // n_edges
        assert!(matches!(
            GraphHeader::decode(&crafted),
            Err(CoreError::BadHeader { .. })
        ));
        // More nodes than u32 node ids can address.
        let giant = GraphHeader::new(u32::MAX as u64 + 1, 0);
        assert!(matches!(
            GraphHeader::decode(&giant.encode()),
            Err(CoreError::BadHeader { .. })
        ));
    }

    #[test]
    fn open_rejects_crafted_overflowing_header_without_panicking() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("crafted.m3grph");
        let mut bytes = vec![0u8; 2 * GRAPH_HEADER_BYTES];
        bytes[0..8].copy_from_slice(&GRAPH_MAGIC);
        bytes[8..12].copy_from_slice(&GRAPH_FORMAT_VERSION.to_le_bytes());
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes()); // n_nodes
        for off in [32usize, 40] {
            bytes[off..off + 8].copy_from_slice(&(GRAPH_HEADER_BYTES as u64).to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            GraphFile::open(&path),
            Err(CoreError::BadHeader { .. })
        ));
    }

    #[test]
    fn persist_and_reopen_round_trip() {
        let dir = tempdir().unwrap();
        let g = sample();
        let file = persist_graph(dir.path().join("g.m3grph"), &g).unwrap();
        assert_eq!(file.n_nodes(), 4);
        assert_eq!(file.n_edges(), 6);
        assert_eq!(AdjacencyStore::indptr(&file), &g.indptr[..]);
        assert_eq!(AdjacencyStore::indices(&file), &g.indices[..]);
        assert_eq!(file.neighbors(2), &[0, 1, 3]);
        assert_eq!(file.neighbors(1), &[] as &[u32]);
        assert_eq!(file.out_degree(0), 2);
        assert!(!file.is_empty());
        assert_eq!(file.header().version, GRAPH_FORMAT_VERSION);
        assert!(file.path().ends_with("g.m3grph"));
        file.verify().unwrap();
        let reopened = GraphFile::open_verified(file.path()).unwrap();
        assert_eq!(reopened.n_edges(), 6);
        // Clone shares the mapping.
        let clone = file.clone();
        assert_eq!(
            AdjacencyStore::indices(&clone),
            AdjacencyStore::indices(&file)
        );
    }

    #[test]
    fn adj_chunk_borrows_node_ranges() {
        let g = sample();
        let chunk = g.adj_chunk(1, 3);
        assert_eq!(chunk.n_rows(), 2);
        assert_eq!(chunk.n_edges(), 3);
        assert_eq!(chunk.row(0), &[] as &[u32]);
        assert_eq!(chunk.row(1), g.neighbors(2));
        let collected: Vec<usize> = chunk.rows_with_index().map(|(r, _)| r).collect();
        assert_eq!(collected, vec![1, 2]);

        let whole = g.adj_chunk(0, 4);
        assert_eq!(whole.n_edges(), g.n_edges());
        assert_eq!(whole.row(0), g.neighbors(0));
    }

    #[test]
    fn builder_enforces_budgets_and_order() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("b.m3grph");
        let mut b = GraphFileBuilder::create(&path, 3, 4).unwrap();
        assert!(b.push_node(&[1, 1]).is_err()); // duplicate
        assert!(b.push_node(&[2, 1]).is_err()); // unsorted
        assert!(b.push_node(&[9]).is_err()); // out of range
        b.push_node(&[1, 2]).unwrap();
        assert_eq!(b.nodes_pushed(), 1);
        assert_eq!(b.edges_pushed(), 2);
        assert!(b.push_node(&[0, 1, 2]).is_err()); // edge budget
        b.push_node(&[0]).unwrap();
        b.push_node(&[2]).unwrap();
        assert!(b.push_node(&[]).is_err()); // node budget
        let file = b.finish().unwrap();
        assert_eq!(AdjacencyStore::indptr(&file), &[0, 2, 3, 4]);

        // Underfilled builders refuse to finish.
        let b = GraphFileBuilder::create(dir.path().join("u.m3grph"), 3, 4).unwrap();
        assert!(b.finish().is_err());

        // n_nodes beyond u32 is a typed error.
        assert!(matches!(
            GraphFileBuilder::create(dir.path().join("x.m3grph"), u32::MAX as usize + 1, 0),
            Err(CoreError::InvalidShape { .. })
        ));
    }

    #[test]
    fn open_rejects_truncated_and_corrupt_files() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.m3grph");
        persist_graph(&path, &sample()).unwrap();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(GRAPH_HEADER_BYTES as u64 + 8).unwrap();
        drop(f);
        assert!(matches!(
            GraphFile::open(&path),
            Err(CoreError::SizeMismatch { .. } | CoreError::BadHeader { .. })
        ));
        assert!(GraphFile::open(dir.path().join("missing.m3grph")).is_err());

        // Corrupt the final indptr entry: endpoints no longer match n_edges.
        let path2 = dir.path().join("c.m3grph");
        persist_graph(&path2, &sample()).unwrap();
        let mut bytes = std::fs::read(&path2).unwrap();
        let h = GraphHeader::new(4, 6);
        let off = h.indptr_offset as usize + 4 * 8;
        bytes[off..off + 8].copy_from_slice(&999u64.to_le_bytes());
        std::fs::write(&path2, &bytes).unwrap();
        assert!(matches!(
            GraphFile::open(&path2),
            Err(CoreError::BadHeader { .. })
        ));

        // Flip a bit in the index section: open still succeeds (O(1)), but
        // verification names the corrupt section.
        let path3 = dir.path().join("v.m3grph");
        persist_graph(&path3, &sample()).unwrap();
        let mut bytes = std::fs::read(&path3).unwrap();
        let off = h.indices_offset as usize;
        bytes[off] ^= 0x01;
        std::fs::write(&path3, &bytes).unwrap();
        match GraphFile::open(&path3) {
            // Without M3_VERIFY the open is O(1) and succeeds...
            Ok(file) => match file.verify() {
                Err(CoreError::ChecksumMismatch { section, .. }) => {
                    assert_eq!(section, "indices")
                }
                other => panic!("wanted ChecksumMismatch, got {other:?}"),
            },
            // ...with M3_VERIFY set the corruption is caught at open.
            Err(CoreError::ChecksumMismatch { section, .. }) => assert_eq!(section, "indices"),
            Err(other) => panic!("wanted ChecksumMismatch, got {other}"),
        }
    }

    #[test]
    fn abandoned_builder_removes_its_tmp_file() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("a.m3grph");
        let b = GraphFileBuilder::create(&path, 2, 1).unwrap();
        drop(b);
        assert_eq!(std::fs::read_dir(dir.path()).unwrap().count(), 0);
    }

    #[test]
    fn advise_is_best_effort() {
        let dir = tempdir().unwrap();
        let file = persist_graph(dir.path().join("adv.m3grph"), &sample()).unwrap();
        for pattern in AccessPattern::ALL {
            file.advise_pattern(pattern);
            AdjacencyStore::advise(&file, pattern);
        }
        // The in-memory impl ignores advice without panicking.
        sample().advise(AccessPattern::Sequential);
    }

    #[test]
    fn trait_forwarding_through_references_and_boxes() {
        let g = sample();
        let by_ref: &VecGraph = &g;
        assert_eq!(AdjacencyStore::n_nodes(&by_ref), 4);
        assert_eq!(AdjacencyStore::neighbors(&by_ref, 2), g.neighbors(2));
        let boxed: Box<dyn AdjacencyStore + Sync> = Box::new(sample());
        assert_eq!(boxed.n_nodes(), 4);
        assert_eq!(boxed.n_edges(), 6);
        assert!(!boxed.is_empty());
        boxed.advise(AccessPattern::Sequential);
    }

    #[test]
    fn empty_graph_round_trips() {
        let dir = tempdir().unwrap();
        let g = VecGraph {
            indptr: vec![0],
            indices: vec![],
        };
        let file = persist_graph(dir.path().join("e.m3grph"), &g).unwrap();
        assert!(file.is_empty());
        assert_eq!(file.n_edges(), 0);
    }
}
