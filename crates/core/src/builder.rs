//! Streaming writer for M3 dataset containers.
//!
//! [`DatasetBuilder`] writes a [`crate::Dataset`] file row by row through a
//! buffered writer, so datasets (much) larger than RAM can be generated with
//! constant memory: feature rows stream straight to disk, labels are buffered
//! (8 bytes per row) and appended at the end, and the header is patched last
//! once the row count is known.
//!
//! Writes are crash-safe: the builder streams into a `.tmp` sibling of the
//! target path, patches the header (including per-section CRC32 checksums
//! computed while streaming), fsyncs the file, atomically renames it into
//! place and fsyncs the parent directory.  A crash — or an injected fault,
//! see [`crate::faults`] — at any step leaves either the intact previous
//! artifact or no artifact at the target path, never a torn file.  An
//! abandoned builder removes its temporary file on drop.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::checksum::Crc32;
use crate::container::{encode_checksums, SectionChecksum, CHECKSUM_BLOCK_OFFSET};
use crate::dataset::{DatasetHeader, HEADER_BYTES};
use crate::error::{CoreError, Result};
use crate::{faults, ELEMENT_BYTES};

/// Incrementally writes an M3 dataset container.
#[derive(Debug)]
pub struct DatasetBuilder {
    writer: Option<BufWriter<File>>,
    path: PathBuf,
    tmp: PathBuf,
    n_cols: usize,
    n_rows: u64,
    labelled: bool,
    labels: Vec<f64>,
    features_crc: Crc32,
    finished: bool,
}

impl DatasetBuilder {
    /// Start a labelled dataset with `n_cols` feature columns at `path`.
    ///
    /// # Errors
    /// Fails when the file cannot be created.
    pub fn create(path: impl AsRef<Path>, n_cols: usize) -> Result<Self> {
        Self::new(path, n_cols, true)
    }

    /// Start an unlabelled dataset with `n_cols` feature columns at `path`.
    ///
    /// # Errors
    /// Fails when the file cannot be created.
    pub fn create_unlabelled(path: impl AsRef<Path>, n_cols: usize) -> Result<Self> {
        Self::new(path, n_cols, false)
    }

    fn new(path: impl AsRef<Path>, n_cols: usize, labelled: bool) -> Result<Self> {
        if n_cols == 0 {
            return Err(CoreError::InvalidShape { rows: 0, cols: 0 });
        }
        let path = path.as_ref().to_path_buf();
        let tmp = faults::tmp_sibling(&path);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| CoreError::io(&tmp, e))?;
        let mut writer = BufWriter::new(file);
        // Reserve the header page; the real header is patched in `finish`.
        if let Err(e) = faults::write_all(&mut writer, &[0u8; HEADER_BYTES], &tmp) {
            drop(writer);
            let _ = std::fs::remove_file(&tmp);
            return Err(CoreError::io(&tmp, e));
        }
        Ok(Self {
            writer: Some(writer),
            path,
            tmp,
            n_cols,
            n_rows: 0,
            labelled,
            labels: Vec::new(),
            features_crc: Crc32::new(),
            finished: false,
        })
    }

    /// Number of feature columns this builder accepts per row.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Number of rows written so far.
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    fn write_features(&mut self, features: &[f64]) -> Result<()> {
        let mut buf = Vec::with_capacity(features.len() * ELEMENT_BYTES);
        for &v in features {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        self.features_crc.update(&buf);
        let writer = self.writer.as_mut().expect("builder already finished");
        faults::write_all(writer, &buf, &self.tmp).map_err(|e| CoreError::io(&self.tmp, e))
    }

    /// Append one example.
    ///
    /// `label` must be `Some` for labelled datasets and is ignored (may be
    /// `None`) for unlabelled ones.
    ///
    /// # Errors
    /// Fails when the feature count does not match `n_cols`, when a label is
    /// missing for a labelled dataset, or on I/O errors.
    pub fn push_row(&mut self, features: &[f64], label: Option<f64>) -> Result<()> {
        if features.len() != self.n_cols {
            return Err(CoreError::BadHeader {
                reason: format!(
                    "row has {} features but the dataset was created with {}",
                    features.len(),
                    self.n_cols
                ),
            });
        }
        if self.labelled {
            let label = label.ok_or_else(|| CoreError::BadHeader {
                reason: "labelled dataset requires a label for every row".to_string(),
            })?;
            self.labels.push(label);
        }
        self.write_features(features)?;
        self.n_rows += 1;
        Ok(())
    }

    /// Append many rows that are already contiguous in memory (row-major).
    ///
    /// # Errors
    /// Fails when `features.len()` is not a multiple of `n_cols`, when the
    /// number of labels does not match the number of rows (for labelled
    /// datasets), or on I/O errors.
    pub fn push_rows(&mut self, features: &[f64], labels: Option<&[f64]>) -> Result<()> {
        if !features.len().is_multiple_of(self.n_cols) {
            return Err(CoreError::BadHeader {
                reason: format!(
                    "feature buffer of {} values is not a multiple of {} columns",
                    features.len(),
                    self.n_cols
                ),
            });
        }
        let rows = features.len() / self.n_cols;
        if self.labelled {
            let labels = labels.ok_or_else(|| CoreError::BadHeader {
                reason: "labelled dataset requires labels".to_string(),
            })?;
            if labels.len() != rows {
                return Err(CoreError::BadHeader {
                    reason: format!("{} labels for {} rows", labels.len(), rows),
                });
            }
            self.labels.extend_from_slice(labels);
        }
        self.write_features(features)?;
        self.n_rows += rows as u64;
        Ok(())
    }

    /// Write the label section, the final header and its checksum block,
    /// fsync, and atomically rename the temporary file into place.
    ///
    /// # Errors
    /// Propagates I/O failures.  On failure the target path is untouched:
    /// it still holds whatever artifact (if any) was there before, and the
    /// temporary file is removed when the builder drops.
    pub fn finish(mut self) -> Result<DatasetHeader> {
        let header = DatasetHeader::new(self.n_rows, self.n_cols as u64, self.labelled);

        // Label section (immediately after the feature block).
        let mut labels_crc = Crc32::new();
        if self.labelled {
            let mut buf = Vec::with_capacity(self.labels.len() * ELEMENT_BYTES);
            for &l in &self.labels {
                buf.extend_from_slice(&l.to_le_bytes());
            }
            labels_crc.update(&buf);
            let writer = self.writer.as_mut().expect("builder already finished");
            faults::write_all(writer, &buf, &self.tmp).map_err(|e| CoreError::io(&self.tmp, e))?;
        }
        {
            let writer = self.writer.as_mut().expect("builder already finished");
            faults::flush(writer, &self.tmp).map_err(|e| CoreError::io(&self.tmp, e))?;
        }

        // Patch the header page: encoded header up front, checksum block in
        // the page's spare tail.
        let mut sections = vec![SectionChecksum {
            name: "features",
            offset: header.data_offset,
            len: header.data_bytes(),
            crc: self.features_crc.finish(),
        }];
        if self.labelled {
            sections.push(SectionChecksum {
                name: "labels",
                offset: header.labels_offset,
                len: self.n_rows * ELEMENT_BYTES as u64,
                crc: labels_crc.finish(),
            });
        }
        let mut page = [0u8; HEADER_BYTES];
        page[..64].copy_from_slice(&header.encode());
        let block = encode_checksums(&sections);
        page[CHECKSUM_BLOCK_OFFSET..CHECKSUM_BLOCK_OFFSET + block.len()].copy_from_slice(&block);

        let mut file = self
            .writer
            .take()
            .expect("builder already finished")
            .into_inner()
            .map_err(|e| CoreError::Io {
                path: Some(self.tmp.clone()),
                source: e.into_error(),
            })?;
        file.seek(SeekFrom::Start(0))
            .map_err(|e| CoreError::io(&self.tmp, e))?;
        faults::write_all(&mut file, &page, &self.tmp).map_err(|e| CoreError::io(&self.tmp, e))?;
        faults::sync_file(&file, &self.tmp).map_err(|e| CoreError::io(&self.tmp, e))?;
        drop(file);

        // Publish: atomic rename, then make the rename itself durable.
        faults::rename(&self.tmp, &self.path).map_err(|e| CoreError::io(&self.tmp, e))?;
        if let Some(parent) = self.path.parent() {
            faults::sync_dir(parent).map_err(|e| CoreError::io(parent, e))?;
        }
        self.finished = true;
        Ok(header)
    }

    /// The path being written (the final artifact path; until
    /// [`DatasetBuilder::finish`] succeeds the bytes live in a `.tmp`
    /// sibling).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for DatasetBuilder {
    fn drop(&mut self) {
        if !self.finished {
            drop(self.writer.take());
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::storage::RowStore;
    use tempfile::tempdir;

    #[test]
    fn build_and_reopen_labelled() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("built.m3ds");
        let mut b = DatasetBuilder::create(&path, 4).unwrap();
        assert_eq!(b.n_cols(), 4);
        assert_eq!(b.path(), path.as_path());
        for i in 0..10 {
            b.push_row(&[i as f64; 4], Some((i % 2) as f64)).unwrap();
        }
        assert_eq!(b.n_rows(), 10);
        let header = b.finish().unwrap();
        assert_eq!(header.n_rows, 10);
        assert!(header.has_labels);

        let ds = Dataset::open(&path).unwrap();
        assert_eq!(ds.n_rows(), 10);
        assert_eq!(RowStore::row(&ds, 7), &[7.0; 4]);
        assert_eq!(ds.labels().unwrap()[7], 1.0);
        // Checksums were written and verify.
        ds.verify().unwrap();
        Dataset::open_verified(&path).unwrap();
    }

    #[test]
    fn push_rows_bulk_matches_per_row() {
        let dir = tempdir().unwrap();
        let bulk_path = dir.path().join("bulk.m3ds");
        let row_path = dir.path().join("rows.m3ds");

        let features: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let labels = [0.0, 1.0, 0.0, 1.0];

        let mut b = DatasetBuilder::create(&bulk_path, 3).unwrap();
        b.push_rows(&features, Some(&labels)).unwrap();
        b.finish().unwrap();

        let mut b = DatasetBuilder::create(&row_path, 3).unwrap();
        for r in 0..4 {
            b.push_row(&features[r * 3..(r + 1) * 3], Some(labels[r]))
                .unwrap();
        }
        b.finish().unwrap();

        let bulk = Dataset::open(&bulk_path).unwrap();
        let rows = Dataset::open(&row_path).unwrap();
        assert_eq!(bulk.as_slice(), rows.as_slice());
        assert_eq!(bulk.labels(), rows.labels());
    }

    #[test]
    fn shape_and_label_validation() {
        let dir = tempdir().unwrap();
        let mut b = DatasetBuilder::create(dir.path().join("v.m3ds"), 3).unwrap();
        assert!(b.push_row(&[1.0, 2.0], Some(0.0)).is_err());
        assert!(b.push_row(&[1.0, 2.0, 3.0], None).is_err());
        assert!(b.push_rows(&[1.0, 2.0, 3.0, 4.0], Some(&[0.0])).is_err());
        assert!(b.push_rows(&[1.0, 2.0, 3.0], Some(&[0.0, 1.0])).is_err());
        assert!(b.push_rows(&[1.0, 2.0, 3.0], None).is_err());
        assert!(DatasetBuilder::create(dir.path().join("zero.m3ds"), 0).is_err());
    }

    #[test]
    fn empty_dataset_is_valid() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("empty.m3ds");
        let b = DatasetBuilder::create_unlabelled(&path, 5).unwrap();
        let header = b.finish().unwrap();
        assert_eq!(header.n_rows, 0);
        let ds = Dataset::open(&path).unwrap();
        assert_eq!(ds.n_rows(), 0);
        assert!(RowStore::is_empty(&ds));
    }

    #[test]
    fn unfinished_builder_leaves_no_files_behind() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("abandoned.m3ds");
        let mut b = DatasetBuilder::create(&path, 2).unwrap();
        b.push_row(&[1.0, 2.0], Some(0.0)).unwrap();
        drop(b);
        assert!(!path.exists(), "final path must not appear");
        assert!(
            !faults::tmp_sibling(&path).exists(),
            "tmp sibling must be cleaned up"
        );
    }

    #[test]
    fn rebuild_is_atomic_over_an_existing_artifact() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("replace.m3ds");
        let mut b = DatasetBuilder::create(&path, 2).unwrap();
        b.push_row(&[1.0, 2.0], Some(0.0)).unwrap();
        b.finish().unwrap();

        // A second build in flight does not disturb the published artifact.
        let mut b = DatasetBuilder::create(&path, 2).unwrap();
        b.push_row(&[9.0, 9.0], Some(1.0)).unwrap();
        let ds = Dataset::open(&path).unwrap();
        assert_eq!(RowStore::row(&ds, 0), &[1.0, 2.0]);
        b.finish().unwrap();
        let ds = Dataset::open(&path).unwrap();
        assert_eq!(RowStore::row(&ds, 0), &[9.0, 9.0]);
    }
}
