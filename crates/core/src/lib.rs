//! # m3-core — memory mapping for machine learning (the M3 contribution)
//!
//! This crate is the Rust reproduction of the core idea of
//! *M3: Scaling Up Machine Learning via Memory Mapping*
//! (Fang & Chau, SIGMOD 2016): memory-map a dataset file into the process's
//! virtual address space and let existing in-memory machine-learning code run
//! over it unchanged, delegating paging, caching and read-ahead to the
//! operating system.
//!
//! The public surface mirrors the paper:
//!
//! * [`alloc::mmap_alloc`] — the paper's Table 1 helper.  One line replaces an
//!   in-memory allocation with a memory-mapped file of the same shape:
//!
//!   ```text
//!   // Original                          // M3
//!   Mat data(rows, cols);                double *m = mmapAlloc(file, rows * cols);
//!                                        Mat data(m, rows, cols);
//!   ```
//!
//!   In this crate the same swap is `DenseMatrix::zeros(rows, cols)` →
//!   `mmap_alloc(path, rows, cols)?`; both implement [`storage::RowStore`], so
//!   downstream algorithm code does not change at all.
//!
//! * [`mmap::MmapMatrix`] — a read-only (or copy-on-write) memory-mapped
//!   row-major `f64` matrix.
//! * [`dataset::Dataset`] — a small self-describing binary container
//!   (header + labels + row-major features) used by the experiment harness,
//!   opened via `mmap` without reading it eagerly.
//! * [`sparse::CsrFile`] — the sparse counterpart of [`dataset::Dataset`]: a
//!   binary compressed-sparse-row container (versioned header plus three
//!   page-rounded mapped sections — row pointers, column indices, values —
//!   and optional labels) behind the [`sparse::SparseRowStore`] trait, so
//!   sparse training scales past RAM exactly like the dense path.
//! * [`graph::GraphFile`] — the adjacency counterpart of [`sparse::CsrFile`]:
//!   a CSR graph is the CSR container with no values section (`u64` offsets
//!   plus `u32` neighbor ids) behind [`graph::AdjacencyStore`], which powers
//!   the out-of-core graph analytics in `m3-graph`.
//! * [`advice::AccessPattern`] — `madvise(2)` hints (sequential / random /
//!   will-need) exposed so callers can tell the OS about their access pattern,
//!   which the paper highlights as a key OS-side optimisation.
//! * [`trace`] and [`stats`] — page-granular access instrumentation used by
//!   the `m3-vmsim` crate to replay algorithm behaviour against a simulated
//!   page cache (this is how Figure 1a is regenerated without a 190 GB file).
//!
//! ## Example
//!
//! ```
//! use m3_core::{alloc::mmap_alloc_mut, storage::RowStore};
//!
//! let dir = tempfile::tempdir().unwrap();
//! let path = dir.path().join("matrix.m3");
//!
//! // Create a 100 x 8 memory-mapped matrix backed by `matrix.m3`.
//! let mut mat = mmap_alloc_mut(&path, 100, 8).unwrap();
//! mat.as_mut_slice()[0] = 42.0;
//! mat.flush().unwrap();
//!
//! // Re-open read-only, exactly as an algorithm would.
//! let ro = m3_core::alloc::mmap_alloc(&path, 100, 8).unwrap();
//! assert_eq!(ro.row(0)[0], 42.0);
//! assert_eq!(ro.n_rows(), 100);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod advice;
pub mod alloc;
pub mod builder;
pub mod checksum;
pub mod chunked;
pub mod ckpt;
pub mod container;
pub mod dataset;
pub mod error;
pub mod exec;
pub mod faults;
pub mod graph;
pub mod mmap;
pub mod model;
mod pool;
pub mod sparse;
pub mod stats;
pub mod storage;
pub mod trace;

pub use advice::AccessPattern;
pub use alloc::{mmap_alloc, mmap_alloc_mut};
pub use checksum::{crc32, Crc32};
pub use ckpt::{CheckpointFile, CheckpointHeader, CheckpointState, TrainProgress};
pub use dataset::{Dataset, DatasetHeader};
pub use error::{CoreError, Result};
pub use exec::ExecContext;
pub use graph::{
    persist_graph, AdjChunk, AdjacencyStore, GraphFile, GraphFileBuilder, GraphHeader,
};
pub use mmap::{MmapMatrix, MmapMatrixMut};
pub use model::{ModelFile, ModelFileBuilder, ModelHeader, ModelKind, ParamMatrix, ParamVec};
pub use sparse::{CsrFile, CsrFileBuilder, CsrHeader, SparseRowChunk, SparseRowStore};
pub use storage::RowStore;

/// Number of bytes per matrix element (`f64`), matching the paper's
/// 784-feature × 8-byte = 6 272-byte rows.
pub const ELEMENT_BYTES: usize = std::mem::size_of::<f64>();

/// Page size assumed throughout the workspace (bytes).  Linux and the paper's
/// test machine both use 4 KiB pages; the value is also what `m3-vmsim`
/// simulates.
pub const PAGE_SIZE: usize = 4096;

/// Round `bytes` up to the next multiple of [`PAGE_SIZE`].
pub fn round_up_to_page(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

/// Number of pages needed to hold `bytes` bytes.
pub fn pages_for(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_rounding() {
        assert_eq!(round_up_to_page(0), 0);
        assert_eq!(round_up_to_page(1), PAGE_SIZE);
        assert_eq!(round_up_to_page(PAGE_SIZE), PAGE_SIZE);
        assert_eq!(round_up_to_page(PAGE_SIZE + 1), 2 * PAGE_SIZE);
    }

    #[test]
    fn pages_for_counts() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE * 3 + 7), 4);
    }

    #[test]
    fn element_bytes_is_eight() {
        assert_eq!(ELEMENT_BYTES, 8);
        // The paper's row size: 784 features * 8 bytes = 6 272 bytes.
        assert_eq!(784 * ELEMENT_BYTES, 6272);
    }
}
