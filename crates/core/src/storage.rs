//! The storage abstraction that makes M3 a one-line change.
//!
//! [`RowStore`] is the single trait every algorithm in `m3-ml` is written
//! against.  In-memory matrices ([`m3_linalg::DenseMatrix`]) and memory-mapped
//! matrices ([`crate::MmapMatrix`]) both implement it, so switching an
//! existing implementation from "loads the dataset into RAM" to "memory-maps
//! a 190 GB file" is exactly the kind of minimal edit the paper's Table 1
//! advertises — the training code itself does not change.

use m3_linalg::{DenseMatrix, MatrixView};

/// A row-major matrix of `f64` whose rows can be borrowed as slices.
///
/// Implementations must store rows contiguously (row-major) so that
/// `rows_slice(a, b)` can hand back a single contiguous slice covering rows
/// `a..b`; this is what lets chunked parallel sweeps and BLAS kernels work
/// identically over heap memory and memory-mapped files.
pub trait RowStore {
    /// Number of rows.
    fn n_rows(&self) -> usize;

    /// Number of columns (features per row).
    fn n_cols(&self) -> usize;

    /// Borrow row `i` as a slice of length [`n_cols`](Self::n_cols).
    ///
    /// # Panics
    /// Implementations panic when `i >= n_rows()`.
    fn row(&self, i: usize) -> &[f64];

    /// Borrow the contiguous row-major storage for rows `start..end`.
    ///
    /// # Panics
    /// Implementations panic when `start > end` or `end > n_rows()`.
    fn rows_slice(&self, start: usize, end: usize) -> &[f64];

    /// Borrow the entire row-major buffer.
    fn as_slice(&self) -> &[f64] {
        self.rows_slice(0, self.n_rows())
    }

    /// `(rows, cols)` pair.
    fn shape(&self) -> (usize, usize) {
        (self.n_rows(), self.n_cols())
    }

    /// Total number of elements.
    fn n_elements(&self) -> usize {
        self.n_rows() * self.n_cols()
    }

    /// Size of the stored data in bytes.
    fn n_bytes(&self) -> usize {
        self.n_elements() * crate::ELEMENT_BYTES
    }

    /// `true` when the store holds no rows.
    fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// A borrowed [`MatrixView`] over the whole store.
    fn view(&self) -> MatrixView<'_> {
        MatrixView::new(self.as_slice(), self.n_rows(), self.n_cols())
            .expect("RowStore implementations maintain the shape invariant")
    }

    /// A borrowed [`MatrixView`] over rows `start..end`.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    fn view_rows(&self, start: usize, end: usize) -> MatrixView<'_> {
        MatrixView::new(self.rows_slice(start, end), end - start, self.n_cols())
            .expect("RowStore implementations maintain the shape invariant")
    }

    /// Hint the expected access pattern for an upcoming pass.
    ///
    /// The default implementation is a no-op; memory-mapped stores forward
    /// the hint to `madvise(2)`.
    fn advise(&self, _pattern: crate::AccessPattern) {}
}

impl RowStore for DenseMatrix {
    fn n_rows(&self) -> usize {
        DenseMatrix::n_rows(self)
    }

    fn n_cols(&self) -> usize {
        DenseMatrix::n_cols(self)
    }

    fn row(&self, i: usize) -> &[f64] {
        DenseMatrix::row(self, i)
    }

    fn rows_slice(&self, start: usize, end: usize) -> &[f64] {
        assert!(
            start <= end && end <= DenseMatrix::n_rows(self),
            "row range out of bounds"
        );
        let cols = DenseMatrix::n_cols(self);
        &DenseMatrix::as_slice(self)[start * cols..end * cols]
    }

    fn as_slice(&self) -> &[f64] {
        DenseMatrix::as_slice(self)
    }
}

impl<T: RowStore + ?Sized> RowStore for &T {
    fn n_rows(&self) -> usize {
        (**self).n_rows()
    }
    fn n_cols(&self) -> usize {
        (**self).n_cols()
    }
    fn row(&self, i: usize) -> &[f64] {
        (**self).row(i)
    }
    fn rows_slice(&self, start: usize, end: usize) -> &[f64] {
        (**self).rows_slice(start, end)
    }
    fn as_slice(&self) -> &[f64] {
        (**self).as_slice()
    }
    fn advise(&self, pattern: crate::AccessPattern) {
        (**self).advise(pattern)
    }
}

impl<T: RowStore + ?Sized> RowStore for Box<T> {
    fn n_rows(&self) -> usize {
        (**self).n_rows()
    }
    fn n_cols(&self) -> usize {
        (**self).n_cols()
    }
    fn row(&self, i: usize) -> &[f64] {
        (**self).row(i)
    }
    fn rows_slice(&self, start: usize, end: usize) -> &[f64] {
        (**self).rows_slice(start, end)
    }
    fn as_slice(&self) -> &[f64] {
        (**self).as_slice()
    }
    fn advise(&self, pattern: crate::AccessPattern) {
        (**self).advise(pattern)
    }
}

impl<T: RowStore + ?Sized> RowStore for std::sync::Arc<T> {
    fn n_rows(&self) -> usize {
        (**self).n_rows()
    }
    fn n_cols(&self) -> usize {
        (**self).n_cols()
    }
    fn row(&self, i: usize) -> &[f64] {
        (**self).row(i)
    }
    fn rows_slice(&self, start: usize, end: usize) -> &[f64] {
        (**self).rows_slice(start, end)
    }
    fn as_slice(&self) -> &[f64] {
        (**self).as_slice()
    }
    fn advise(&self, pattern: crate::AccessPattern) {
        (**self).advise(pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_vec((0..12).map(|i| i as f64).collect(), 4, 3).unwrap()
    }

    #[test]
    fn dense_matrix_implements_row_store() {
        let m = sample();
        let store: &dyn RowStore = &m;
        assert_eq!(store.shape(), (4, 3));
        assert_eq!(store.n_elements(), 12);
        assert_eq!(store.n_bytes(), 96);
        assert!(!store.is_empty());
        assert_eq!(store.row(1), &[3.0, 4.0, 5.0]);
        assert_eq!(store.rows_slice(1, 3), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(store.as_slice().len(), 12);
    }

    #[test]
    fn view_and_view_rows() {
        let m = sample();
        let v = RowStore::view(&m);
        assert_eq!(v.shape(), (4, 3));
        let sub = m.view_rows(2, 4);
        assert_eq!(sub.shape(), (2, 3));
        assert_eq!(sub.row(0), &[6.0, 7.0, 8.0]);
    }

    #[test]
    fn reference_and_arc_forward() {
        let m = sample();
        let by_ref: &DenseMatrix = &m;
        assert_eq!(RowStore::n_rows(&by_ref), 4);
        assert_eq!(RowStore::row(&by_ref, 0), &[0.0, 1.0, 2.0]);

        let arc = Arc::new(sample());
        assert_eq!(arc.n_rows(), 4);
        assert_eq!(arc.rows_slice(0, 1), &[0.0, 1.0, 2.0]);
        arc.advise(crate::AccessPattern::Sequential); // no-op, must not panic
    }

    #[test]
    fn boxed_and_trait_object_stores_forward() {
        let boxed: Box<DenseMatrix> = Box::new(sample());
        assert_eq!(boxed.n_rows(), 4);
        assert_eq!(RowStore::row(&boxed, 2), &[6.0, 7.0, 8.0]);

        // The erased form algorithms receive through the Estimator API.
        let erased: Box<dyn RowStore + Sync> = Box::new(sample());
        assert_eq!(erased.shape(), (4, 3));
        assert_eq!(erased.rows_slice(0, 1), &[0.0, 1.0, 2.0]);
        erased.advise(crate::AccessPattern::Sequential);
    }

    #[test]
    fn empty_store() {
        let m = DenseMatrix::zeros(0, 5);
        assert!(RowStore::is_empty(&m));
        assert_eq!(RowStore::n_bytes(&m), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rows_slice_out_of_bounds_panics() {
        let m = sample();
        m.rows_slice(2, 5);
    }
}
