//! Fault injection for the persistence I/O layer.
//!
//! Every durable step the container writers take — buffered writes, flushes,
//! `fsync` of files and parent directories, `set_len`, `msync` of mapped
//! builders and the final atomic rename — is routed through the helpers in
//! this module instead of calling `std::fs`/`std::io` directly.  When no
//! fault plan is armed the helpers compile down to one relaxed atomic load
//! on top of the real operation; when a plan is armed, each step first
//! consults the plan, which may fail it, short-write it, or delay it.
//!
//! That turns "what happens if the process dies between the header patch and
//! the fsync?" from a thought experiment into a test: the crash-matrix suite
//! (`tests/crash_matrix.rs`) counts the steps of a successful build, then
//! re-runs the build failing at every step in turn and asserts the on-disk
//! state is always either the intact previous artifact or no artifact —
//! never a half-visible file, and never a panic.
//!
//! Arming is programmatic ([`arm`]/[`disarm`], used by the test harness) or
//! environment-driven: `M3_FAULTS=<kind>:<op>:<step>[:<ms>]` (for example
//! `M3_FAULTS=fail:fsync:0` fails the first fsync of the process,
//! `M3_FAULTS=short:write:3` short-writes the fourth write,
//! `M3_FAULTS=delay:any:0:50` delays every step by 50 ms) arms a plan at the
//! first injected operation of the process.  Only one plan is active at a
//! time; the crash-matrix suite serialises its cases around that.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, Once, PoisonError};
use std::time::Duration;

/// The class of durable I/O step being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A buffered or direct write of payload bytes.
    Write,
    /// A `flush` of buffered writes into the OS.
    Flush,
    /// An `fsync`/`sync_all` of a file.
    SyncFile,
    /// An `fsync` of a parent directory (making a rename durable).
    SyncDir,
    /// A `set_len` pre-sizing a file.
    SetLen,
    /// An `msync` of a mapped builder.
    FlushMap,
    /// The atomic rename publishing a finished artifact.
    Rename,
}

impl FaultOp {
    /// Short lowercase name, as used in the `M3_FAULTS` spec.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Write => "write",
            FaultOp::Flush => "flush",
            FaultOp::SyncFile => "fsync",
            FaultOp::SyncDir => "fsync_dir",
            FaultOp::SetLen => "set_len",
            FaultOp::FlushMap => "msync",
            FaultOp::Rename => "rename",
        }
    }

    fn parse(s: &str) -> Option<Option<Self>> {
        Some(match s {
            "any" => None,
            "write" => Some(FaultOp::Write),
            "flush" => Some(FaultOp::Flush),
            "fsync" => Some(FaultOp::SyncFile),
            "fsync_dir" => Some(FaultOp::SyncDir),
            "set_len" => Some(FaultOp::SetLen),
            "msync" => Some(FaultOp::FlushMap),
            "rename" => Some(FaultOp::Rename),
            _ => return None,
        })
    }
}

/// What the armed plan does to the step it triggers on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The step returns an injected `io::Error` without running.
    Fail,
    /// A write persists only a prefix of its buffer, then errors — a torn
    /// write.  Non-write steps treat this as [`FaultKind::Fail`].
    ShortWrite,
    /// The step runs normally after sleeping — for timeout testing.
    Delay(Duration),
}

/// An armed fault plan: trigger [`FaultPlan::kind`] at the
/// [`FaultPlan::trigger_at`]-th matching step (0-based).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Which matching step (0-based) the fault fires on; `None` never fires,
    /// which turns the plan into a pure step counter.
    pub trigger_at: Option<u64>,
    /// What happens at the triggering step.
    pub kind: FaultKind,
    /// Restrict matching to one operation class (`None` matches every
    /// class).
    pub op: Option<FaultOp>,
}

impl FaultPlan {
    /// A plan that never fires — used to count and record the steps of a
    /// successful operation.
    pub fn count_only() -> Self {
        Self {
            trigger_at: None,
            kind: FaultKind::Fail,
            op: None,
        }
    }

    /// Fail the `step`-th step (0-based) of class `op` (`None` = any).
    pub fn fail_at(step: u64, op: Option<FaultOp>) -> Self {
        Self {
            trigger_at: Some(step),
            kind: FaultKind::Fail,
            op,
        }
    }

    /// Short-write the `step`-th matching write (torn write then error).
    pub fn short_write_at(step: u64) -> Self {
        Self {
            trigger_at: Some(step),
            kind: FaultKind::ShortWrite,
            op: Some(FaultOp::Write),
        }
    }

    /// Parse an `M3_FAULTS` spec: `<kind>:<op>:<step>[:<ms>]`.
    pub fn parse(spec: &str) -> Option<Self> {
        let mut parts = spec.split(':');
        let kind = parts.next()?;
        let op = FaultOp::parse(parts.next()?)?;
        let step: u64 = parts.next()?.parse().ok()?;
        let kind = match kind {
            "fail" => FaultKind::Fail,
            "short" => FaultKind::ShortWrite,
            "delay" => FaultKind::Delay(Duration::from_millis(
                parts.next().unwrap_or("10").parse().ok()?,
            )),
            _ => return None,
        };
        Some(Self {
            trigger_at: Some(step),
            kind,
            op,
        })
    }
}

/// One recorded step of an armed run.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// The operation class.
    pub op: FaultOp,
    /// The file (or directory) the step acted on.
    pub path: PathBuf,
}

/// What [`disarm`] reports about the run since [`arm`].
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Steps that matched the plan's op filter.
    pub matching_steps: u64,
    /// Whether the plan's trigger fired.
    pub triggered: bool,
    /// Every step observed (all classes), in order.
    pub log: Vec<StepRecord>,
}

struct State {
    plan: FaultPlan,
    matched: u64,
    triggered: bool,
    log: Vec<StepRecord>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<State>> = Mutex::new(None);
static ENV_INIT: Once = Once::new();

fn lock_state() -> std::sync::MutexGuard<'static, Option<State>> {
    // A panicking holder cannot leave the counters in a harmful state;
    // recover the guard instead of cascading the poison.
    STATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arm `plan`, resetting the step counter and log.  Replaces any previously
/// armed plan.
pub fn arm(plan: FaultPlan) {
    let mut state = lock_state();
    *state = Some(State {
        plan,
        matched: 0,
        triggered: false,
        log: Vec::new(),
    });
    ACTIVE.store(true, Ordering::Release);
}

/// Disarm any armed plan and report what it observed.
pub fn disarm() -> FaultReport {
    let mut state = lock_state();
    ACTIVE.store(false, Ordering::Release);
    match state.take() {
        Some(s) => FaultReport {
            matching_steps: s.matched,
            triggered: s.triggered,
            log: s.log,
        },
        None => FaultReport {
            matching_steps: 0,
            triggered: false,
            log: Vec::new(),
        },
    }
}

/// `true` when a fault plan is currently armed.
pub fn active() -> bool {
    init_from_env();
    ACTIVE.load(Ordering::Acquire)
}

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Some(spec) = std::env::var_os("M3_FAULTS") {
            if let Some(plan) = spec.to_str().and_then(FaultPlan::parse) {
                arm(plan);
            }
        }
    });
}

/// The decision the armed plan makes for one step.
enum Decision {
    Proceed,
    Fail,
    Short,
}

fn injected_error(op: FaultOp, path: &Path) -> io::Error {
    io::Error::other(format!(
        "injected fault: {} on {}",
        op.name(),
        path.display()
    ))
}

/// Record a step and decide its fate.  Cheap no-op unless a plan is armed.
fn decide(op: FaultOp, path: &Path) -> Decision {
    if !active() {
        return Decision::Proceed;
    }
    let mut guard = lock_state();
    let Some(state) = guard.as_mut() else {
        return Decision::Proceed;
    };
    state.log.push(StepRecord {
        op,
        path: path.to_path_buf(),
    });
    if state.plan.op.is_some_and(|want| want != op) {
        return Decision::Proceed;
    }
    let index = state.matched;
    state.matched += 1;
    if state.plan.trigger_at != Some(index) {
        return Decision::Proceed;
    }
    state.triggered = true;
    match state.plan.kind {
        FaultKind::Fail => Decision::Fail,
        FaultKind::ShortWrite => {
            if op == FaultOp::Write {
                Decision::Short
            } else {
                Decision::Fail
            }
        }
        FaultKind::Delay(d) => {
            drop(guard);
            std::thread::sleep(d);
            Decision::Proceed
        }
    }
}

/// Write all of `buf` through the fault layer.
///
/// # Errors
/// Propagates the underlying write error, or the injected one.  A
/// [`FaultKind::ShortWrite`] persists roughly half the buffer first, so the
/// torn prefix is really on disk (or in the stream) when the error surfaces.
pub fn write_all<W: Write>(writer: &mut W, buf: &[u8], path: &Path) -> io::Result<()> {
    match decide(FaultOp::Write, path) {
        Decision::Proceed => writer.write_all(buf),
        Decision::Fail => Err(injected_error(FaultOp::Write, path)),
        Decision::Short => {
            writer.write_all(&buf[..buf.len() / 2])?;
            Err(injected_error(FaultOp::Write, path))
        }
    }
}

/// Flush `writer` through the fault layer.
///
/// # Errors
/// Propagates the underlying flush error, or the injected one.
pub fn flush<W: Write>(writer: &mut W, path: &Path) -> io::Result<()> {
    match decide(FaultOp::Flush, path) {
        Decision::Fail | Decision::Short => Err(injected_error(FaultOp::Flush, path)),
        Decision::Proceed => writer.flush(),
    }
}

/// `fsync` `file` through the fault layer.
///
/// # Errors
/// Propagates the underlying sync error, or the injected one.
pub fn sync_file(file: &File, path: &Path) -> io::Result<()> {
    match decide(FaultOp::SyncFile, path) {
        Decision::Fail | Decision::Short => Err(injected_error(FaultOp::SyncFile, path)),
        Decision::Proceed => file.sync_all(),
    }
}

/// `set_len` on `file` through the fault layer.
///
/// # Errors
/// Propagates the underlying error, or the injected one.
pub fn set_len(file: &File, len: u64, path: &Path) -> io::Result<()> {
    match decide(FaultOp::SetLen, path) {
        Decision::Fail | Decision::Short => Err(injected_error(FaultOp::SetLen, path)),
        Decision::Proceed => file.set_len(len),
    }
}

/// `msync` a mapped builder through the fault layer.
///
/// # Errors
/// Propagates the underlying flush error, or the injected one.
pub fn flush_map(map: &memmap2::MmapMut, path: &Path) -> io::Result<()> {
    match decide(FaultOp::FlushMap, path) {
        Decision::Fail | Decision::Short => Err(injected_error(FaultOp::FlushMap, path)),
        Decision::Proceed => map.flush(),
    }
}

/// `fsync` the directory containing `dir` entries — what makes a rename (or
/// a freshly created file) durable across a crash.  Best-effort no-op on
/// platforms where directories cannot be opened.
///
/// # Errors
/// Propagates the underlying open/sync error, or the injected one.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    match decide(FaultOp::SyncDir, dir) {
        Decision::Fail | Decision::Short => Err(injected_error(FaultOp::SyncDir, dir)),
        Decision::Proceed => {
            #[cfg(unix)]
            {
                File::open(dir)?.sync_all()
            }
            #[cfg(not(unix))]
            {
                Ok(())
            }
        }
    }
}

/// Atomically rename `from` to `to` through the fault layer.
///
/// # Errors
/// Propagates the underlying rename error, or the injected one.
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    match decide(FaultOp::Rename, from) {
        Decision::Fail | Decision::Short => Err(injected_error(FaultOp::Rename, from)),
        Decision::Proceed => std::fs::rename(from, to),
    }
}

/// The temporary sibling a builder writes to before renaming into `path`:
/// same directory (so the rename cannot cross filesystems), with `.tmp`
/// appended to the file name.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // The plan is process-global; serialise the tests that arm one.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    #[test]
    fn tmp_sibling_stays_in_the_same_directory() {
        let t = tmp_sibling(Path::new("/a/b/model.m3m"));
        assert_eq!(t, Path::new("/a/b/model.m3m.tmp"));
    }

    #[test]
    fn spec_parsing() {
        let p = FaultPlan::parse("fail:fsync:2").unwrap();
        assert_eq!(p.trigger_at, Some(2));
        assert_eq!(p.op, Some(FaultOp::SyncFile));
        assert_eq!(p.kind, FaultKind::Fail);

        let p = FaultPlan::parse("short:write:0").unwrap();
        assert_eq!(p.kind, FaultKind::ShortWrite);

        let p = FaultPlan::parse("delay:any:1:25").unwrap();
        assert_eq!(p.op, None);
        assert_eq!(p.kind, FaultKind::Delay(Duration::from_millis(25)));

        assert!(FaultPlan::parse("explode:write:0").is_none());
        assert!(FaultPlan::parse("fail:warp:0").is_none());
        assert!(FaultPlan::parse("fail:write").is_none());
    }

    #[test]
    fn inactive_layer_passes_operations_through() {
        let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::new();
        write_all(&mut out, b"hello", Path::new("x")).unwrap();
        flush(&mut out, Path::new("x")).unwrap();
        assert_eq!(out, b"hello");
    }

    #[test]
    fn armed_plan_counts_fails_and_short_writes() {
        let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let path = Path::new("victim");

        arm(FaultPlan::count_only());
        let mut out = Vec::new();
        write_all(&mut out, b"abcd", path).unwrap();
        write_all(&mut out, b"efgh", path).unwrap();
        flush(&mut out, path).unwrap();
        let report = disarm();
        assert_eq!(report.matching_steps, 3);
        assert!(!report.triggered);
        assert_eq!(report.log.len(), 3);
        assert_eq!(report.log[2].op, FaultOp::Flush);

        arm(FaultPlan::fail_at(1, Some(FaultOp::Write)));
        let mut out = Vec::new();
        write_all(&mut out, b"abcd", path).unwrap();
        let err = write_all(&mut out, b"efgh", path).unwrap_err();
        assert!(err.to_string().contains("injected fault"));
        assert_eq!(out, b"abcd");
        assert!(disarm().triggered);

        arm(FaultPlan::short_write_at(0));
        let mut out = Vec::new();
        assert!(write_all(&mut out, b"abcd", path).is_err());
        assert_eq!(out, b"ab", "short write persists a torn prefix");
        assert!(disarm().triggered);
    }

    #[test]
    fn delay_plans_proceed_after_sleeping() {
        let _guard = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        arm(FaultPlan {
            trigger_at: Some(0),
            kind: FaultKind::Delay(Duration::from_millis(1)),
            op: None,
        });
        let mut out = Vec::new();
        write_all(&mut out, b"zz", Path::new("d")).unwrap();
        assert_eq!(out, b"zz");
        assert!(disarm().triggered);
    }
}
