//! Memory-mapped row-major matrices.
//!
//! [`MmapMatrix`] (read-only) and [`MmapMatrixMut`] (writable) map a plain
//! binary file of little-endian `f64` values laid out row-major — exactly the
//! representation the paper's modified mlpack reads — into the process's
//! address space.  After mapping, the data is indistinguishable from an
//! in-memory matrix: both types expose `&[f64]` rows and implement
//! [`RowStore`], and the OS transparently pages the file in and out of RAM.

use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use memmap2::{Mmap, MmapMut};

use crate::error::{CoreError, Result};
use crate::stats::TouchStats;
use crate::storage::RowStore;
use crate::AccessPattern;

/// Validate a shape and return the required file size in bytes.
fn required_bytes(rows: usize, cols: usize) -> Result<u64> {
    let elems = rows
        .checked_mul(cols)
        .ok_or(CoreError::InvalidShape { rows, cols })?;
    let bytes = elems
        .checked_mul(crate::ELEMENT_BYTES)
        .ok_or(CoreError::InvalidShape { rows, cols })?;
    Ok(bytes as u64)
}

/// Reinterpret a mapped byte region as a slice of `f64`, after verifying
/// length and alignment.
///
/// # Safety
/// The caller must guarantee the bytes live as long as the returned slice and
/// that the region contains `len / 8` valid `f64` values (any bit pattern is
/// a valid `f64`, so this reduces to the length/alignment checks performed
/// here).
unsafe fn bytes_as_f64(bytes: &[u8], offset: usize, n_elements: usize) -> Result<&[f64]> {
    let start = bytes.as_ptr() as usize + offset;
    if !start.is_multiple_of(std::mem::align_of::<f64>()) {
        return Err(CoreError::Misaligned { address: start });
    }
    let needed = offset + n_elements * crate::ELEMENT_BYTES;
    if bytes.len() < needed {
        return Err(CoreError::BadHeader {
            reason: format!(
                "mapped region of {} bytes is smaller than the {} bytes required",
                bytes.len(),
                needed
            ),
        });
    }
    // SAFETY: alignment and length were checked above; every byte pattern is
    // a valid f64; the lifetime is tied to `bytes` by the signature.
    Ok(unsafe { std::slice::from_raw_parts(bytes[offset..].as_ptr().cast::<f64>(), n_elements) })
}

/// A read-only memory-mapped row-major `f64` matrix.
///
/// The matrix keeps the mapping (and therefore the file) alive for its whole
/// lifetime.  Cloning is cheap: the mapping is shared behind an [`Arc`].
#[derive(Debug, Clone)]
pub struct MmapMatrix {
    map: Arc<Mmap>,
    path: PathBuf,
    n_rows: usize,
    n_cols: usize,
    /// Byte offset of the first element inside the mapping (non-zero for
    /// dataset containers that carry a header).
    offset: usize,
    stats: Option<Arc<TouchStats>>,
}

impl MmapMatrix {
    /// Memory-map an existing raw matrix file (no header, just
    /// `rows × cols` little-endian `f64` values).
    ///
    /// # Errors
    /// Fails when the file cannot be opened or mapped, when its size does not
    /// match the requested shape, or when the mapping is misaligned.
    pub fn open(path: impl AsRef<Path>, rows: usize, cols: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let needed = required_bytes(rows, cols)?;
        let file = OpenOptions::new()
            .read(true)
            .open(&path)
            .map_err(|e| CoreError::io(&path, e))?;
        let actual = file.metadata().map_err(|e| CoreError::io(&path, e))?.len();
        if actual < needed {
            return Err(CoreError::SizeMismatch {
                path,
                expected_bytes: needed,
                actual_bytes: actual,
            });
        }
        // SAFETY: we map the file read-only and never create a mutable alias;
        // concurrent external modification of the file is outside this
        // program's control, as with any mmap-based system (including M3).
        let map = unsafe { Mmap::map(&file) }.map_err(|e| CoreError::io(&path, e))?;
        Self::from_mapping(Arc::new(map), path, rows, cols, 0)
    }

    /// Wrap an existing shared mapping, starting `offset` bytes in.
    /// Used by [`crate::Dataset`] to expose the feature block of a container
    /// file without re-mapping it.
    pub(crate) fn from_mapping(
        map: Arc<Mmap>,
        path: PathBuf,
        rows: usize,
        cols: usize,
        offset: usize,
    ) -> Result<Self> {
        // Validate once upfront so later accesses can be panic-free slices.
        unsafe { bytes_as_f64(&map[..], offset, rows * cols)? };
        Ok(Self {
            map,
            path,
            n_rows: rows,
            n_cols: cols,
            offset,
            stats: None,
        })
    }

    /// Attach a shared [`TouchStats`] counter that every row access updates.
    pub fn with_stats(mut self, stats: Arc<TouchStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Size of the mapped data region in bytes.
    pub fn data_bytes(&self) -> usize {
        self.n_rows * self.n_cols * crate::ELEMENT_BYTES
    }

    /// The full data region as a `f64` slice.
    ///
    /// Alignment and length were validated once in `from_mapping`, so this
    /// is plain pointer arithmetic — it sits on the per-row access path of
    /// every sweep, where re-running the checked conversion (and its error
    /// formatting) per row made memory-mapped reads measurably slower than
    /// heap reads even with a warm page cache.
    #[inline]
    pub fn data(&self) -> &[f64] {
        // SAFETY: `from_mapping` verified that the region starting at
        // `offset` is 8-byte aligned and holds `n_rows * n_cols` f64s, and
        // the mapping is immutable and alive for `&self`'s lifetime.
        unsafe {
            std::slice::from_raw_parts(
                self.map.as_ptr().add(self.offset).cast::<f64>(),
                self.n_rows * self.n_cols,
            )
        }
    }

    /// Forward an access-pattern hint to the kernel (`madvise`).  Errors are
    /// deliberately ignored: advice is best-effort and its absence only
    /// affects performance, never correctness.
    pub fn advise_pattern(&self, pattern: AccessPattern) {
        #[cfg(unix)]
        {
            let _ = self.map.advise(pattern.to_memmap_advice());
        }
        #[cfg(not(unix))]
        {
            let _ = pattern;
        }
    }

    fn record(&self, rows: u64) {
        if let Some(stats) = &self.stats {
            stats.record_rows(rows, self.n_cols as u64);
        }
    }
}

impl RowStore for MmapMatrix {
    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn n_cols(&self) -> usize {
        self.n_cols
    }

    fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n_rows, "row {i} out of bounds ({})", self.n_rows);
        self.record(1);
        &self.data()[i * self.n_cols..(i + 1) * self.n_cols]
    }

    fn rows_slice(&self, start: usize, end: usize) -> &[f64] {
        assert!(
            start <= end && end <= self.n_rows,
            "row range out of bounds"
        );
        self.record((end - start) as u64);
        &self.data()[start * self.n_cols..end * self.n_cols]
    }

    fn as_slice(&self) -> &[f64] {
        self.data()
    }

    fn advise(&self, pattern: AccessPattern) {
        self.advise_pattern(pattern);
    }
}

/// A writable memory-mapped row-major `f64` matrix.
///
/// Used to *build* large datasets in place: the file is created (or resized)
/// to the exact shape, mapped read-write, filled through
/// [`as_mut_slice`](Self::as_mut_slice) or [`row_mut`](Self::row_mut), and
/// flushed.  Convert to the read-only [`MmapMatrix`] with
/// [`into_read_only`](Self::into_read_only) once populated.
#[derive(Debug)]
pub struct MmapMatrixMut {
    map: MmapMut,
    path: PathBuf,
    n_rows: usize,
    n_cols: usize,
}

impl MmapMatrixMut {
    /// Create (or truncate/extend) `path` so it holds exactly
    /// `rows × cols` `f64` values, and map it read-write.
    ///
    /// # Errors
    /// Fails when the file cannot be created, resized or mapped.
    pub fn create(path: impl AsRef<Path>, rows: usize, cols: usize) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let needed = required_bytes(rows, cols)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| CoreError::io(&path, e))?;
        file.set_len(needed).map_err(|e| CoreError::io(&path, e))?;
        // SAFETY: we hold the only mapping of a file we just created/resized.
        let map = unsafe { MmapMut::map_mut(&file) }.map_err(|e| CoreError::io(&path, e))?;
        let addr = map.as_ptr() as usize;
        if !addr.is_multiple_of(std::mem::align_of::<f64>()) {
            return Err(CoreError::Misaligned { address: addr });
        }
        Ok(Self {
            map,
            path,
            n_rows: rows,
            n_cols: cols,
        })
    }

    /// Open an existing raw matrix file read-write.
    ///
    /// # Errors
    /// Fails when the file is missing, too small for the shape, or cannot be
    /// mapped.
    pub fn open(path: impl AsRef<Path>, rows: usize, cols: usize) -> Result<Self> {
        let path_buf = path.as_ref().to_path_buf();
        let needed = required_bytes(rows, cols)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path_buf)
            .map_err(|e| CoreError::io(&path_buf, e))?;
        let actual = file
            .metadata()
            .map_err(|e| CoreError::io(&path_buf, e))?
            .len();
        if actual < needed {
            return Err(CoreError::SizeMismatch {
                path: path_buf,
                expected_bytes: needed,
                actual_bytes: actual,
            });
        }
        // SAFETY: mapping a file we opened read-write; aliasing is the
        // caller's responsibility exactly as in the C++ original.
        let map = unsafe { MmapMut::map_mut(&file) }.map_err(|e| CoreError::io(&path_buf, e))?;
        Ok(Self {
            map,
            path: path_buf,
            n_rows: rows,
            n_cols: cols,
        })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The whole data region as an immutable `f64` slice.
    pub fn as_slice(&self) -> &[f64] {
        // SAFETY: alignment checked at construction; length set via set_len.
        unsafe {
            std::slice::from_raw_parts(self.map.as_ptr().cast::<f64>(), self.n_rows * self.n_cols)
        }
    }

    /// The whole data region as a mutable `f64` slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // SAFETY: alignment checked at construction; we have &mut self.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.map.as_mut_ptr().cast::<f64>(),
                self.n_rows * self.n_cols,
            )
        }
    }

    /// Mutable access to row `i`.
    ///
    /// # Panics
    /// Panics when `i >= n_rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.n_rows, "row {i} out of bounds ({})", self.n_rows);
        let cols = self.n_cols;
        &mut self.as_mut_slice()[i * cols..(i + 1) * cols]
    }

    /// Immutable access to row `i`.
    ///
    /// # Panics
    /// Panics when `i >= n_rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n_rows, "row {i} out of bounds ({})", self.n_rows);
        &self.as_slice()[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// Flush dirty pages back to the file.
    ///
    /// # Errors
    /// Propagates the underlying `msync` failure.
    pub fn flush(&self) -> Result<()> {
        self.map.flush().map_err(|e| CoreError::io(&self.path, e))
    }

    /// Flush and convert into a read-only [`MmapMatrix`] over the same file.
    ///
    /// # Errors
    /// Propagates flush or re-mapping failures.
    pub fn into_read_only(self) -> Result<MmapMatrix> {
        self.flush()?;
        let (path, rows, cols) = (self.path.clone(), self.n_rows, self.n_cols);
        drop(self);
        MmapMatrix::open(path, rows, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    fn path_in(dir: &tempfile::TempDir, name: &str) -> PathBuf {
        dir.path().join(name)
    }

    #[test]
    fn create_write_reopen_roundtrip() {
        let dir = tempdir().unwrap();
        let p = path_in(&dir, "m.bin");
        let mut m = MmapMatrixMut::create(&p, 3, 4).unwrap();
        for i in 0..12 {
            m.as_mut_slice()[i] = i as f64;
        }
        m.flush().unwrap();
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0, 7.0]);

        let ro = MmapMatrix::open(&p, 3, 4).unwrap();
        assert_eq!(ro.n_rows(), 3);
        assert_eq!(ro.n_cols(), 4);
        assert_eq!(ro.row(2), &[8.0, 9.0, 10.0, 11.0]);
        assert_eq!(ro.rows_slice(0, 2).len(), 8);
        assert_eq!(ro.data_bytes(), 96);
        assert_eq!(ro.path(), p.as_path());
    }

    #[test]
    fn into_read_only_preserves_contents() {
        let dir = tempdir().unwrap();
        let p = path_in(&dir, "ro.bin");
        let mut m = MmapMatrixMut::create(&p, 2, 2).unwrap();
        m.row_mut(0).copy_from_slice(&[1.0, 2.0]);
        m.row_mut(1).copy_from_slice(&[3.0, 4.0]);
        let ro = m.into_read_only().unwrap();
        assert_eq!(ro.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn open_missing_file_fails() {
        let dir = tempdir().unwrap();
        let err = MmapMatrix::open(path_in(&dir, "missing.bin"), 1, 1).unwrap_err();
        assert!(matches!(err, CoreError::Io { .. }));
    }

    #[test]
    fn open_with_wrong_shape_fails() {
        let dir = tempdir().unwrap();
        let p = path_in(&dir, "small.bin");
        MmapMatrixMut::create(&p, 2, 2).unwrap().flush().unwrap();
        let err = MmapMatrix::open(&p, 100, 100).unwrap_err();
        assert!(matches!(err, CoreError::SizeMismatch { .. }));
        let err = MmapMatrixMut::open(&p, 100, 100).unwrap_err();
        assert!(matches!(err, CoreError::SizeMismatch { .. }));
    }

    #[test]
    fn open_existing_mutable_and_modify() {
        let dir = tempdir().unwrap();
        let p = path_in(&dir, "rw.bin");
        MmapMatrixMut::create(&p, 2, 2).unwrap().flush().unwrap();
        let mut rw = MmapMatrixMut::open(&p, 2, 2).unwrap();
        rw.row_mut(1)[1] = 9.0;
        rw.flush().unwrap();
        let ro = MmapMatrix::open(&p, 2, 2).unwrap();
        assert_eq!(ro.row(1)[1], 9.0);
        assert_eq!(rw.path(), p.as_path());
        assert_eq!(rw.n_rows(), 2);
        assert_eq!(rw.n_cols(), 2);
    }

    #[test]
    fn row_store_impl_and_stats() {
        let dir = tempdir().unwrap();
        let p = path_in(&dir, "stats.bin");
        let mut m = MmapMatrixMut::create(&p, 4, 2).unwrap();
        for (i, v) in m.as_mut_slice().iter_mut().enumerate() {
            *v = i as f64;
        }
        let stats = TouchStats::new_shared();
        let ro = m.into_read_only().unwrap().with_stats(Arc::clone(&stats));
        let total: f64 = (0..ro.n_rows())
            .map(|r| ro.row(r).iter().sum::<f64>())
            .sum();
        assert_eq!(total, (0..8).sum::<usize>() as f64);
        assert_eq!(stats.rows_read(), 4);
        assert_eq!(stats.elements_read(), 8);

        // RowStore::view works over the mapped data.
        let view = RowStore::view(&ro);
        assert_eq!(view.get(3, 1), 7.0);
    }

    #[test]
    fn advise_is_best_effort_and_does_not_panic() {
        let dir = tempdir().unwrap();
        let p = path_in(&dir, "advice.bin");
        let m = MmapMatrixMut::create(&p, 8, 8)
            .unwrap()
            .into_read_only()
            .unwrap();
        for pattern in AccessPattern::ALL {
            m.advise_pattern(pattern);
            RowStore::advise(&m, pattern);
        }
    }

    #[test]
    fn invalid_shape_is_rejected() {
        let dir = tempdir().unwrap();
        let p = path_in(&dir, "huge.bin");
        let err = MmapMatrixMut::create(&p, usize::MAX, 2).unwrap_err();
        assert!(matches!(err, CoreError::InvalidShape { .. }));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn row_out_of_bounds_panics() {
        let dir = tempdir().unwrap();
        let p = path_in(&dir, "oob.bin");
        let m = MmapMatrixMut::create(&p, 2, 2)
            .unwrap()
            .into_read_only()
            .unwrap();
        let _ = m.row(2);
    }

    #[test]
    fn clone_shares_mapping() {
        let dir = tempdir().unwrap();
        let p = path_in(&dir, "clone.bin");
        let mut m = MmapMatrixMut::create(&p, 2, 2).unwrap();
        m.as_mut_slice()[3] = 5.0;
        let ro = m.into_read_only().unwrap();
        let ro2 = ro.clone();
        assert_eq!(ro.as_slice(), ro2.as_slice());
        assert_eq!(ro2.row(1)[1], 5.0);
    }
}
