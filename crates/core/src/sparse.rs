//! Memory-mapped compressed sparse row (CSR) storage.
//!
//! The dense half of this crate makes "where the rows live" a one-line
//! change via [`crate::RowStore`]; this module does the same for sparse
//! data.  [`SparseRowStore`] is the trait every sparse algorithm in `m3-ml`
//! is written against, implemented by the in-memory
//! [`m3_linalg::CsrMatrix`] and by [`CsrFile`], a single-file binary CSR
//! container that is opened with `mmap` and **no eager reads** — the three
//! CSR arrays are separate page-rounded sections of one mapping, so a
//! multi-gigabyte RCV1- or url-shaped dataset opens in microseconds and
//! pages fault in lazily as training sweeps over row ranges.
//!
//! ## On-disk layout (version 1)
//!
//! ```text
//! offset 0              : 4096-byte header (magic "M3CSRF01", version,
//!                         flags, shape, nnz, section offsets)
//! indptr_offset  (page-aligned): (n_rows + 1) × u64  row pointers
//! indices_offset (page-aligned): nnz × u32           column indices
//! values_offset  (page-aligned): nnz × f64           entry values
//! labels_offset  (page-aligned): n_rows × f64        labels (optional)
//! ```
//!
//! All integers are little-endian.  Page-rounding every section keeps each
//! array page- and element-aligned once mapped, exactly like the dense
//! [`crate::Dataset`] container, and means a sweep's `madvise` hints act on
//! whole sections.

use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use memmap2::{Mmap, MmapMut};

use m3_linalg::CsrMatrix;

use crate::container::{
    decode_preamble, encode_checksums, section_slice, SectionChecksum, CHECKSUM_BLOCK_OFFSET,
};
use crate::error::{CoreError, Result};
use crate::{faults, AccessPattern, ELEMENT_BYTES, PAGE_SIZE};

/// Magic bytes identifying an M3 binary CSR file.
pub const CSR_MAGIC: [u8; 8] = *b"M3CSRF01";
/// Current on-disk CSR format version.
pub const CSR_FORMAT_VERSION: u32 = 1;
/// Size of the fixed CSR header block (one page).
pub const CSR_HEADER_BYTES: usize = PAGE_SIZE;

/// Flag bit: the file carries a label section.
const FLAG_HAS_LABELS: u32 = 1;

/// Bytes per stored entry across the index and value sections.
const INDEX_BYTES: usize = std::mem::size_of::<u32>();
const INDPTR_BYTES: usize = std::mem::size_of::<u64>();

/// A matrix whose rows are compressed sparse: three parallel arrays
/// (`indptr`/`indices`/`values`) in the layout described by
/// [`m3_linalg::CsrMatrix`].
///
/// The accessors hand back whole-array slices so chunked sweeps can slice a
/// row range out of each without per-row indirection; `indptr` values are
/// **global** entry offsets.
pub trait SparseRowStore {
    /// Number of rows.
    fn n_rows(&self) -> usize;

    /// Number of columns.
    fn n_cols(&self) -> usize;

    /// Number of stored entries.
    fn nnz(&self) -> usize;

    /// The row-pointer array (`n_rows + 1` entries).
    fn indptr(&self) -> &[u64];

    /// The column index of every stored entry.
    fn indices(&self) -> &[u32];

    /// The value of every stored entry.
    fn values(&self) -> &[f64];

    /// Hint the expected access pattern for an upcoming pass; memory-mapped
    /// stores forward this to `madvise(2)`, in-memory stores ignore it.
    fn advise(&self, _pattern: AccessPattern) {}

    /// `(rows, cols)` pair.
    fn shape(&self) -> (usize, usize) {
        (self.n_rows(), self.n_cols())
    }

    /// `true` when the store holds no rows.
    fn is_empty(&self) -> bool {
        self.n_rows() == 0
    }

    /// Fraction of entries that are stored.
    fn density(&self) -> f64 {
        let total = self.n_rows() * self.n_cols();
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// The stored entries of row `i` as `(column indices, values)`.
    ///
    /// # Panics
    /// Panics when `i >= n_rows()` or the row pointers are corrupt.
    fn row(&self, i: usize) -> (&[u32], &[f64]) {
        assert!(
            i < self.n_rows(),
            "row {i} out of bounds ({})",
            self.n_rows()
        );
        let indptr = self.indptr();
        let start = indptr[i] as usize;
        let end = indptr[i + 1] as usize;
        (&self.indices()[start..end], &self.values()[start..end])
    }

    /// Borrow rows `start..end` as a [`SparseRowChunk`].
    ///
    /// # Panics
    /// Panics when the range is out of bounds or the row pointers are
    /// corrupt.
    fn sparse_chunk(&self, start: usize, end: usize) -> SparseRowChunk<'_> {
        assert!(
            start <= end && end <= self.n_rows(),
            "row range out of bounds"
        );
        let indptr = &self.indptr()[start..=end];
        let lo = indptr[0] as usize;
        let hi = indptr[indptr.len() - 1] as usize;
        SparseRowChunk {
            start_row: start,
            end_row: end,
            indptr,
            indices: &self.indices()[lo..hi],
            values: &self.values()[lo..hi],
            n_cols: self.n_cols(),
        }
    }
}

impl SparseRowStore for CsrMatrix {
    fn n_rows(&self) -> usize {
        CsrMatrix::n_rows(self)
    }
    fn n_cols(&self) -> usize {
        CsrMatrix::n_cols(self)
    }
    fn nnz(&self) -> usize {
        CsrMatrix::nnz(self)
    }
    fn indptr(&self) -> &[u64] {
        CsrMatrix::indptr(self)
    }
    fn indices(&self) -> &[u32] {
        CsrMatrix::indices(self)
    }
    fn values(&self) -> &[f64] {
        CsrMatrix::values(self)
    }
}

impl<T: SparseRowStore + ?Sized> SparseRowStore for &T {
    fn n_rows(&self) -> usize {
        (**self).n_rows()
    }
    fn n_cols(&self) -> usize {
        (**self).n_cols()
    }
    fn nnz(&self) -> usize {
        (**self).nnz()
    }
    fn indptr(&self) -> &[u64] {
        (**self).indptr()
    }
    fn indices(&self) -> &[u32] {
        (**self).indices()
    }
    fn values(&self) -> &[f64] {
        (**self).values()
    }
    fn advise(&self, pattern: AccessPattern) {
        (**self).advise(pattern)
    }
}

impl<T: SparseRowStore + ?Sized> SparseRowStore for Box<T> {
    fn n_rows(&self) -> usize {
        (**self).n_rows()
    }
    fn n_cols(&self) -> usize {
        (**self).n_cols()
    }
    fn nnz(&self) -> usize {
        (**self).nnz()
    }
    fn indptr(&self) -> &[u64] {
        (**self).indptr()
    }
    fn indices(&self) -> &[u32] {
        (**self).indices()
    }
    fn values(&self) -> &[f64] {
        (**self).values()
    }
    fn advise(&self, pattern: AccessPattern) {
        (**self).advise(pattern)
    }
}

/// A contiguous block of sparse rows borrowed from a [`SparseRowStore`] —
/// the sparse analogue of [`crate::chunked::RowChunk`], produced by the
/// `ExecContext` sparse sweep drivers.
///
/// `indptr` keeps its **global** entry offsets while `indices`/`values` are
/// rebased to the chunk (`indices[0]` is entry `indptr[0]` of the store),
/// which is exactly the convention the `m3-linalg` sparse kernels take.
#[derive(Debug, Clone, Copy)]
pub struct SparseRowChunk<'a> {
    /// Index of the first row in the chunk.
    pub start_row: usize,
    /// One past the last row in the chunk.
    pub end_row: usize,
    /// Row pointers, `n_rows() + 1` entries of global offsets.
    pub indptr: &'a [u64],
    /// Column indices of the chunk's entries.
    pub indices: &'a [u32],
    /// Values of the chunk's entries.
    pub values: &'a [f64],
    /// Number of columns per row.
    pub n_cols: usize,
}

impl<'a> SparseRowChunk<'a> {
    /// Number of rows in the chunk.
    pub fn n_rows(&self) -> usize {
        self.end_row - self.start_row
    }

    /// Number of stored entries in the chunk.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored entries of chunk-local row `i` as `(indices, values)`.
    ///
    /// # Panics
    /// Panics when `i >= n_rows()`.
    pub fn row(&self, i: usize) -> (&'a [u32], &'a [f64]) {
        assert!(
            i < self.n_rows(),
            "row {i} out of bounds ({})",
            self.n_rows()
        );
        let base = self.indptr[0];
        let start = (self.indptr[i] - base) as usize;
        let end = (self.indptr[i + 1] - base) as usize;
        (&self.indices[start..end], &self.values[start..end])
    }

    /// Iterate over the chunk's rows with their global row indices.
    pub fn rows_with_index(&self) -> impl Iterator<Item = (usize, &'a [u32], &'a [f64])> + '_ {
        (0..self.n_rows()).map(move |i| {
            let (idx, val) = self.row(i);
            (self.start_row + i, idx, val)
        })
    }
}

/// Parsed binary-CSR header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrHeader {
    /// On-disk format version.
    pub version: u32,
    /// Number of rows.
    pub n_rows: u64,
    /// Number of columns.
    pub n_cols: u64,
    /// Number of stored entries.
    pub nnz: u64,
    /// Whether a label section is present.
    pub has_labels: bool,
    /// Byte offset of the row-pointer section.
    pub indptr_offset: u64,
    /// Byte offset of the column-index section.
    pub indices_offset: u64,
    /// Byte offset of the value section.
    pub values_offset: u64,
    /// Byte offset of the label section (meaningful only with labels).
    pub labels_offset: u64,
}

impl CsrHeader {
    /// Construct the header (and page-rounded section layout) for a matrix
    /// of the given shape.
    ///
    /// # Panics
    /// Panics when the shape is so large its section layout overflows `u64`
    /// (unreachable for shapes that fit in memory or on disk); untrusted
    /// shapes read from files go through the checked path in
    /// [`decode`](Self::decode) instead.
    pub fn new(n_rows: u64, n_cols: u64, nnz: u64, has_labels: bool) -> Self {
        Self::checked_new(n_rows, n_cols, nnz, has_labels)
            .expect("CSR shape overflows the on-disk section layout")
    }

    /// [`new`](Self::new) with overflow-checked arithmetic, for *untrusted*
    /// shape fields read from a file: `None` when the shape's section layout
    /// would not even fit in a `u64` (such a file cannot exist on disk).
    fn checked_new(n_rows: u64, n_cols: u64, nnz: u64, has_labels: bool) -> Option<Self> {
        let round = |bytes: u64| {
            bytes
                .checked_add(PAGE_SIZE as u64 - 1)
                .map(|b| b / PAGE_SIZE as u64 * PAGE_SIZE as u64)
        };
        let indptr_offset = CSR_HEADER_BYTES as u64;
        let indices_offset = round(
            n_rows
                .checked_add(1)?
                .checked_mul(INDPTR_BYTES as u64)?
                .checked_add(indptr_offset)?,
        )?;
        let values_offset = round(
            nnz.checked_mul(INDEX_BYTES as u64)?
                .checked_add(indices_offset)?,
        )?;
        let labels_offset = round(
            nnz.checked_mul(ELEMENT_BYTES as u64)?
                .checked_add(values_offset)?,
        )?;
        // The label section (and the usize conversions open() performs)
        // must not overflow either.
        labels_offset.checked_add(n_rows.checked_mul(ELEMENT_BYTES as u64)?)?;
        Some(Self {
            version: CSR_FORMAT_VERSION,
            n_rows,
            n_cols,
            nnz,
            has_labels,
            indptr_offset,
            indices_offset,
            values_offset,
            labels_offset,
        })
    }

    /// Total file size implied by this header.
    pub fn file_bytes(&self) -> u64 {
        if self.has_labels {
            self.labels_offset + self.n_rows * ELEMENT_BYTES as u64
        } else {
            self.values_offset + self.nnz * ELEMENT_BYTES as u64
        }
    }

    /// Serialise into the fixed-size header block.
    pub fn encode(&self) -> [u8; 72] {
        let mut buf = [0u8; 72];
        buf[0..8].copy_from_slice(&CSR_MAGIC);
        buf[8..12].copy_from_slice(&self.version.to_le_bytes());
        let flags: u32 = if self.has_labels { FLAG_HAS_LABELS } else { 0 };
        buf[12..16].copy_from_slice(&flags.to_le_bytes());
        buf[16..24].copy_from_slice(&self.n_rows.to_le_bytes());
        buf[24..32].copy_from_slice(&self.n_cols.to_le_bytes());
        buf[32..40].copy_from_slice(&self.nnz.to_le_bytes());
        buf[40..48].copy_from_slice(&self.indptr_offset.to_le_bytes());
        buf[48..56].copy_from_slice(&self.indices_offset.to_le_bytes());
        buf[56..64].copy_from_slice(&self.values_offset.to_le_bytes());
        buf[64..72].copy_from_slice(&self.labels_offset.to_le_bytes());
        buf
    }

    /// Parse a header from the first bytes of a file and check that every
    /// section is internally consistent.
    ///
    /// # Errors
    /// Returns [`CoreError::BadHeader`] on a wrong magic, an unsupported
    /// version, or offsets that overlap, misalign or overflow.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let bad = |reason: String| CoreError::BadHeader { reason };
        let flags = decode_preamble(bytes, &CSR_MAGIC, CSR_FORMAT_VERSION, 72)?;
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let header = Self {
            version: CSR_FORMAT_VERSION,
            has_labels: flags & FLAG_HAS_LABELS != 0,
            n_rows: u64_at(16),
            n_cols: u64_at(24),
            nnz: u64_at(32),
            indptr_offset: u64_at(40),
            indices_offset: u64_at(48),
            values_offset: u64_at(56),
            labels_offset: u64_at(64),
        };
        // Recompute the section layout with checked arithmetic — the shape
        // fields are untrusted, and a crafted n_rows/nnz near u64::MAX must
        // surface as BadHeader, not as an overflow panic (or, worse, wrap
        // around and validate).
        let expected =
            Self::checked_new(header.n_rows, header.n_cols, header.nnz, header.has_labels)
                .ok_or_else(|| bad("shape overflows the section layout".to_string()))?;
        if header != expected {
            return Err(bad(
                "section offsets disagree with the shape in the header".to_string()
            ));
        }
        if header.n_cols > u32::MAX as u64 {
            return Err(bad(format!(
                "n_cols {} does not fit the u32 column-index type",
                header.n_cols
            )));
        }
        Ok(header)
    }
}

/// A read-only memory-mapped binary CSR file.
///
/// Opening performs only O(1) header validation — the index and value
/// sections are *not* scanned, so a huge file opens instantly and malformed
/// row pointers surface as panics at access time (the same trust model as
/// mapping any foreign file).  Cloning shares the mapping behind an [`Arc`].
#[derive(Debug, Clone)]
pub struct CsrFile {
    map: Arc<Mmap>,
    path: PathBuf,
    header: CsrHeader,
}

impl CsrFile {
    /// Memory-map an existing binary CSR file.
    ///
    /// # Errors
    /// Fails when the file cannot be opened or mapped, its header is
    /// malformed, or its size disagrees with the header.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .open(&path)
            .map_err(|e| CoreError::io(&path, e))?;
        // SAFETY: read-only mapping, never mutably aliased by this process.
        let map = unsafe { Mmap::map(&file) }.map_err(|e| CoreError::io(&path, e))?;
        let header = CsrHeader::decode(&map[..map.len().min(CSR_HEADER_BYTES)])?;
        let actual = map.len() as u64;
        if actual < header.file_bytes() {
            return Err(CoreError::SizeMismatch {
                path,
                expected_bytes: header.file_bytes(),
                actual_bytes: actual,
            });
        }
        let this = Self {
            map: Arc::new(map),
            path,
            header,
        };
        // Validate section bounds/alignment once so the accessors are
        // panic-free slices, and sanity-check the indptr endpoints (the two
        // entries we can check without touching the whole section).
        let indptr = this.try_indptr()?;
        unsafe {
            section_slice::<u32>(&this.map[..], this.header.indices_offset, this.nnz())?;
            section_slice::<f64>(&this.map[..], this.header.values_offset, this.nnz())?;
            if this.header.has_labels {
                section_slice::<f64>(&this.map[..], this.header.labels_offset, this.n_rows())?;
            }
        }
        if indptr[0] != 0 || indptr[indptr.len() - 1] != this.header.nnz {
            return Err(CoreError::BadHeader {
                reason: format!(
                    "indptr endpoints ({}, {}) disagree with nnz {}",
                    indptr[0],
                    indptr[indptr.len() - 1],
                    this.header.nnz
                ),
            });
        }
        if crate::container::verify_on_open() {
            this.verify()?;
        }
        Ok(this)
    }

    /// Open and verify every section checksum — [`CsrFile::open`] followed
    /// by [`CsrFile::verify`].
    ///
    /// # Errors
    /// Everything `open` can fail with, plus
    /// [`CoreError::ChecksumMismatch`] for a corrupted section and
    /// [`CoreError::BadHeader`] for a file carrying no checksum block.
    pub fn open_verified(path: impl AsRef<Path>) -> Result<Self> {
        let file = Self::open(path)?;
        file.verify()?;
        Ok(file)
    }

    /// Re-hash every section against the header's checksum block.  Reads
    /// (faults in) the whole file, unlike `open`; also run automatically
    /// when `M3_VERIFY` is set.
    ///
    /// # Errors
    /// [`CoreError::ChecksumMismatch`] naming the corrupt section, or
    /// [`CoreError::BadHeader`] when the file carries no checksum block.
    pub fn verify(&self) -> Result<()> {
        crate::container::verify_checksums(&self.map, &self.path)
    }

    fn try_indptr(&self) -> Result<&[u64]> {
        // SAFETY: u64 is plain-old-data.
        unsafe { section_slice(&self.map[..], self.header.indptr_offset, self.n_rows() + 1) }
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The parsed header.
    pub fn header(&self) -> &CsrHeader {
        &self.header
    }

    /// The label section, when the file has one.
    pub fn labels(&self) -> Option<&[f64]> {
        if !self.header.has_labels {
            return None;
        }
        // SAFETY: validated at open; f64 is plain-old-data.
        Some(
            unsafe { section_slice(&self.map[..], self.header.labels_offset, self.n_rows()) }
                .expect("label section was validated at open"),
        )
    }

    /// Forward an access-pattern hint for the whole mapping to the kernel
    /// (`madvise`).  Best-effort: errors are ignored, as with the dense
    /// stores.
    pub fn advise_pattern(&self, pattern: AccessPattern) {
        #[cfg(unix)]
        {
            let _ = self.map.advise(pattern.to_memmap_advice());
        }
        #[cfg(not(unix))]
        {
            let _ = pattern;
        }
    }

    /// Copy the file into an in-memory [`CsrMatrix`] (validating the full
    /// CSR structure on the way).  Intended for tests and small files.
    ///
    /// # Errors
    /// Fails when the stored arrays violate a CSR invariant.
    pub fn to_csr_matrix(&self) -> Result<CsrMatrix> {
        CsrMatrix::new(
            self.n_cols(),
            SparseRowStore::indptr(self).to_vec(),
            SparseRowStore::indices(self).to_vec(),
            SparseRowStore::values(self).to_vec(),
        )
        .map_err(|e| CoreError::BadHeader {
            reason: format!("mapped CSR arrays are inconsistent: {e}"),
        })
    }
}

impl SparseRowStore for CsrFile {
    fn n_rows(&self) -> usize {
        self.header.n_rows as usize
    }
    fn n_cols(&self) -> usize {
        self.header.n_cols as usize
    }
    fn nnz(&self) -> usize {
        self.header.nnz as usize
    }
    fn indptr(&self) -> &[u64] {
        self.try_indptr().expect("indptr section validated at open")
    }
    fn indices(&self) -> &[u32] {
        // SAFETY: validated at open; u32 is plain-old-data.
        unsafe { section_slice(&self.map[..], self.header.indices_offset, self.nnz()) }
            .expect("index section validated at open")
    }
    fn values(&self) -> &[f64] {
        // SAFETY: validated at open; f64 is plain-old-data.
        unsafe { section_slice(&self.map[..], self.header.values_offset, self.nnz()) }
            .expect("value section validated at open")
    }
    fn advise(&self, pattern: AccessPattern) {
        self.advise_pattern(pattern);
    }
}

/// Streaming writer for the binary CSR format.
///
/// The file is created at its final (page-rounded) size up front, mapped
/// read-write, and filled row by row — constant memory regardless of the
/// dataset size, the same discipline as the dense
/// [`crate::builder::DatasetBuilder`].  Row and entry counts must be known
/// in advance (converters take a counting pass first).
///
/// The builder works on a `.tmp` sibling of the target path;
/// [`CsrFileBuilder::finish`] checksums the sections, fsyncs and atomically
/// renames into place, so a crash mid-build never leaves a torn artifact
/// visible.  An abandoned builder removes its temporary file on drop.
#[derive(Debug)]
pub struct CsrFileBuilder {
    map: Option<MmapMut>,
    file: Option<File>,
    path: PathBuf,
    tmp: PathBuf,
    header: CsrHeader,
    rows_pushed: usize,
    entries_pushed: usize,
    finished: bool,
}

impl CsrFileBuilder {
    /// Create (or truncate) `path` sized for `n_rows × n_cols` with exactly
    /// `nnz` stored entries, with a label section when `with_labels`.
    ///
    /// # Errors
    /// Fails when the file cannot be created, sized or mapped, or when the
    /// shape does not fit the format's index types.
    pub fn create(
        path: impl AsRef<Path>,
        n_rows: usize,
        n_cols: usize,
        nnz: usize,
        with_labels: bool,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        if n_cols > u32::MAX as usize {
            return Err(CoreError::InvalidShape {
                rows: n_rows,
                cols: n_cols,
            });
        }
        let tmp = faults::tmp_sibling(&path);
        let header = CsrHeader::new(n_rows as u64, n_cols as u64, nnz as u64, with_labels);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| CoreError::io(&tmp, e))?;
        faults::set_len(&file, header.file_bytes(), &tmp).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            CoreError::io(&tmp, e)
        })?;
        // SAFETY: we hold the only mapping of a file we just created.
        let mut map = unsafe { MmapMut::map_mut(&file) }.map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            CoreError::io(&tmp, e)
        })?;
        map[..72].copy_from_slice(&header.encode());
        let mut builder = Self {
            map: Some(map),
            file: Some(file),
            path,
            tmp,
            header,
            rows_pushed: 0,
            entries_pushed: 0,
            finished: false,
        };
        builder.write_indptr(0, 0);
        Ok(builder)
    }

    fn map(&self) -> &MmapMut {
        self.map.as_ref().expect("builder already finished")
    }

    fn map_mut(&mut self) -> &mut MmapMut {
        self.map.as_mut().expect("builder already finished")
    }

    fn write_indptr(&mut self, row: usize, value: u64) {
        let offset = self.header.indptr_offset as usize + row * INDPTR_BYTES;
        self.map_mut()[offset..offset + INDPTR_BYTES].copy_from_slice(&value.to_le_bytes());
    }

    /// Append one row (strictly-increasing column `indices`, matching
    /// `values`, and its label — ignored when the file has no label
    /// section).
    ///
    /// # Errors
    /// Fails when the row budget or entry budget declared at creation would
    /// be exceeded, or when the row's indices are invalid.
    pub fn push_row(&mut self, indices: &[u32], values: &[f64], label: f64) -> Result<()> {
        let bad = |reason: String| CoreError::BadHeader { reason };
        if self.rows_pushed >= self.header.n_rows as usize {
            return Err(bad(format!(
                "row budget of {} exhausted",
                self.header.n_rows
            )));
        }
        if self.entries_pushed + indices.len() > self.header.nnz as usize {
            return Err(bad(format!(
                "entry budget of {} exhausted at row {}",
                self.header.nnz, self.rows_pushed
            )));
        }
        // The per-row invariant (matching lengths, strictly-increasing
        // in-range indices) is the same one every CSR constructor enforces —
        // one shared definition in m3-linalg.
        m3_linalg::sparse::validate_csr_row(
            self.rows_pushed,
            indices,
            values,
            self.header.n_cols as usize,
        )
        .map_err(|e| bad(e.to_string()))?;

        let idx_off = self.header.indices_offset as usize + self.entries_pushed * INDEX_BYTES;
        let val_off = self.header.values_offset as usize + self.entries_pushed * ELEMENT_BYTES;
        let lbl_off = self.header.labels_offset as usize + self.rows_pushed * ELEMENT_BYTES;
        let has_labels = self.header.has_labels;
        let map = self.map_mut();
        for (k, &c) in indices.iter().enumerate() {
            map[idx_off + k * INDEX_BYTES..idx_off + (k + 1) * INDEX_BYTES]
                .copy_from_slice(&c.to_le_bytes());
        }
        for (k, &v) in values.iter().enumerate() {
            map[val_off + k * ELEMENT_BYTES..val_off + (k + 1) * ELEMENT_BYTES]
                .copy_from_slice(&v.to_le_bytes());
        }
        if has_labels {
            map[lbl_off..lbl_off + ELEMENT_BYTES].copy_from_slice(&label.to_le_bytes());
        }

        self.entries_pushed += indices.len();
        self.rows_pushed += 1;
        let (row, entries) = (self.rows_pushed, self.entries_pushed as u64);
        self.write_indptr(row, entries);
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn rows_pushed(&self) -> usize {
        self.rows_pushed
    }

    /// Checksum the sections, flush, fsync, atomically rename the temporary
    /// file into place and reopen it read-only.
    ///
    /// # Errors
    /// Fails when fewer rows or entries were pushed than declared, or on
    /// flush/sync/rename/reopen I/O errors.  On failure the target path
    /// still holds whatever artifact (if any) was there before; the
    /// temporary file is removed when the builder drops.
    pub fn finish(mut self) -> Result<CsrFile> {
        if self.rows_pushed != self.header.n_rows as usize
            || self.entries_pushed != self.header.nnz as usize
        {
            return Err(CoreError::BadHeader {
                reason: format!(
                    "declared {} rows / {} entries but received {} / {}",
                    self.header.n_rows, self.header.nnz, self.rows_pushed, self.entries_pushed
                ),
            });
        }
        let h = self.header;
        {
            let map = self.map_mut();
            let mut sections = vec![
                SectionChecksum::of(
                    "indptr",
                    map,
                    h.indptr_offset,
                    (h.n_rows + 1) * INDPTR_BYTES as u64,
                ),
                SectionChecksum::of("indices", map, h.indices_offset, h.nnz * INDEX_BYTES as u64),
                SectionChecksum::of("values", map, h.values_offset, h.nnz * ELEMENT_BYTES as u64),
            ];
            if h.has_labels {
                sections.push(SectionChecksum::of(
                    "labels",
                    map,
                    h.labels_offset,
                    h.n_rows * ELEMENT_BYTES as u64,
                ));
            }
            let block = encode_checksums(&sections);
            map[CHECKSUM_BLOCK_OFFSET..CHECKSUM_BLOCK_OFFSET + block.len()].copy_from_slice(&block);
        }
        faults::flush_map(self.map(), &self.tmp).map_err(|e| CoreError::io(&self.tmp, e))?;
        let file = self.file.as_ref().expect("builder already finished");
        faults::sync_file(file, &self.tmp).map_err(|e| CoreError::io(&self.tmp, e))?;
        drop(self.map.take());
        drop(self.file.take());
        faults::rename(&self.tmp, &self.path).map_err(|e| CoreError::io(&self.tmp, e))?;
        if let Some(parent) = self.path.parent() {
            faults::sync_dir(parent).map_err(|e| CoreError::io(parent, e))?;
        }
        self.finished = true;
        CsrFile::open(&self.path)
    }
}

impl Drop for CsrFileBuilder {
    fn drop(&mut self) {
        if !self.finished {
            drop(self.map.take());
            drop(self.file.take());
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

/// Persist an in-memory [`CsrMatrix`] (with optional labels) as a binary CSR
/// file and reopen it memory-mapped — the sparse analogue of
/// [`crate::alloc::persist_matrix`].
///
/// # Errors
/// Fails on I/O errors or when `labels` does not cover every row.
pub fn persist_csr(
    path: impl AsRef<Path>,
    matrix: &CsrMatrix,
    labels: Option<&[f64]>,
) -> Result<CsrFile> {
    if let Some(labels) = labels {
        if labels.len() != matrix.n_rows() {
            return Err(CoreError::BadHeader {
                reason: format!("{} labels for {} rows", labels.len(), matrix.n_rows()),
            });
        }
    }
    let mut builder = CsrFileBuilder::create(
        path,
        matrix.n_rows(),
        matrix.n_cols(),
        matrix.nnz(),
        labels.is_some(),
    )?;
    for r in 0..matrix.n_rows() {
        let (idx, val) = matrix.row(r);
        let label = labels.map_or(0.0, |l| l[r]);
        builder.push_row(idx, val, label)?;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_linalg::CsrBuilder;
    use tempfile::tempdir;

    fn sample() -> CsrMatrix {
        let mut b = CsrBuilder::new(5);
        b.push_row(&[0, 4], &[1.5, -2.0]).unwrap();
        b.push_row(&[], &[]).unwrap();
        b.push_row(&[1, 2, 3], &[0.25, 0.5, 0.75]).unwrap();
        b.finish()
    }

    #[test]
    fn header_round_trip_and_layout() {
        let h = CsrHeader::new(1000, 47_236, 80_000, true);
        assert_eq!(CsrHeader::decode(&h.encode()).unwrap(), h);
        for offset in [
            h.indptr_offset,
            h.indices_offset,
            h.values_offset,
            h.labels_offset,
        ] {
            assert_eq!(offset % PAGE_SIZE as u64, 0, "offset {offset} not paged");
        }
        assert!(h.indices_offset >= h.indptr_offset + 1001 * 8);
        assert!(h.values_offset >= h.indices_offset + 80_000 * 4);
        assert!(h.file_bytes() >= h.labels_offset + 1000 * 8);
    }

    #[test]
    fn bad_headers_are_rejected() {
        let h = CsrHeader::new(10, 4, 7, false);
        let mut bytes = h.encode();
        bytes[0] = b'X';
        assert!(matches!(
            CsrHeader::decode(&bytes),
            Err(CoreError::BadHeader { .. })
        ));
        let mut bytes = h.encode();
        bytes[8] = 99; // version
        assert!(CsrHeader::decode(&bytes).is_err());
        let mut bytes = h.encode();
        bytes[40] = 1; // corrupt indptr offset
        assert!(CsrHeader::decode(&bytes).is_err());
        assert!(CsrHeader::decode(&bytes[..20]).is_err());

        // Crafted shapes near u64::MAX must decode to BadHeader — checked
        // arithmetic, not overflow panics (debug) or wrap-around acceptance
        // (release).
        let mut crafted = h.encode();
        crafted[16..24].copy_from_slice(&u64::MAX.to_le_bytes()); // n_rows
        assert!(matches!(
            CsrHeader::decode(&crafted),
            Err(CoreError::BadHeader { .. })
        ));
        let mut crafted = h.encode();
        crafted[32..40].copy_from_slice(&(u64::MAX / 4).to_le_bytes()); // nnz
        assert!(matches!(
            CsrHeader::decode(&crafted),
            Err(CoreError::BadHeader { .. })
        ));
    }

    #[test]
    fn open_rejects_crafted_overflowing_header_without_panicking() {
        // The review reproduction: an 8 KiB file whose header claims
        // n_rows = u64::MAX with all section offsets at 4096.  open() must
        // return BadHeader (its documented contract), never panic or accept.
        let dir = tempdir().unwrap();
        let path = dir.path().join("crafted.m3csr");
        let mut bytes = vec![0u8; 2 * CSR_HEADER_BYTES];
        bytes[0..8].copy_from_slice(&CSR_MAGIC);
        bytes[8..12].copy_from_slice(&CSR_FORMAT_VERSION.to_le_bytes());
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes()); // n_rows
        for off in [40usize, 48, 56, 64] {
            bytes[off..off + 8].copy_from_slice(&(CSR_HEADER_BYTES as u64).to_le_bytes());
        }
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            CsrFile::open(&path),
            Err(CoreError::BadHeader { .. })
        ));
    }

    #[test]
    fn persist_and_reopen_round_trip() {
        let dir = tempdir().unwrap();
        let matrix = sample();
        let labels = [1.0, 0.0, 1.0];
        let file = persist_csr(dir.path().join("m.m3csr"), &matrix, Some(&labels)).unwrap();
        assert_eq!(file.shape(), (3, 5));
        assert_eq!(file.nnz(), 5);
        assert_eq!(SparseRowStore::indptr(&file), matrix.indptr());
        assert_eq!(SparseRowStore::indices(&file), matrix.indices());
        assert_eq!(SparseRowStore::values(&file), matrix.values());
        assert_eq!(file.labels().unwrap(), &labels);
        assert_eq!(file.row(2), matrix.row(2));
        assert!((file.density() - matrix.density()).abs() < 1e-15);
        assert_eq!(file.to_csr_matrix().unwrap(), matrix);
        assert_eq!(file.header().version, CSR_FORMAT_VERSION);
        assert!(file.path().ends_with("m.m3csr"));

        // Without labels.
        let file = persist_csr(dir.path().join("n.m3csr"), &matrix, None).unwrap();
        assert!(file.labels().is_none());
        // Clone shares the mapping.
        let clone = file.clone();
        assert_eq!(
            SparseRowStore::values(&clone),
            SparseRowStore::values(&file)
        );
    }

    #[test]
    fn sparse_chunk_borrows_row_ranges() {
        let matrix = sample();
        let chunk = matrix.sparse_chunk(1, 3);
        assert_eq!(chunk.n_rows(), 2);
        assert_eq!(chunk.nnz(), 3);
        assert_eq!(chunk.row(0), (&[][..], &[][..]));
        assert_eq!(chunk.row(1), matrix.row(2));
        let collected: Vec<usize> = chunk.rows_with_index().map(|(r, _, _)| r).collect();
        assert_eq!(collected, vec![1, 2]);

        let whole = matrix.sparse_chunk(0, 3);
        assert_eq!(whole.nnz(), matrix.nnz());
        assert_eq!(whole.row(0), matrix.row(0));
    }

    #[test]
    fn builder_enforces_budgets_and_order() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("b.m3csr");
        let mut b = CsrFileBuilder::create(&path, 2, 4, 3, false).unwrap();
        assert!(b.push_row(&[1, 1], &[1.0, 2.0], 0.0).is_err()); // duplicate
        assert!(b.push_row(&[9], &[1.0], 0.0).is_err()); // out of range
        assert!(b.push_row(&[0], &[1.0, 2.0], 0.0).is_err()); // length mismatch
        b.push_row(&[0, 2], &[1.0, 2.0], 0.0).unwrap();
        assert_eq!(b.rows_pushed(), 1);
        assert!(b.push_row(&[0, 1], &[1.0, 2.0], 0.0).is_err()); // nnz budget
        b.push_row(&[3], &[4.0], 0.0).unwrap();
        assert!(b.push_row(&[], &[], 0.0).is_err()); // row budget
        let file = b.finish().unwrap();
        assert_eq!(SparseRowStore::indptr(&file), &[0, 2, 3]);

        // Underfilled builders refuse to finish.
        let b = CsrFileBuilder::create(dir.path().join("u.m3csr"), 2, 4, 3, false).unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn open_rejects_truncated_and_corrupt_files() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.m3csr");
        persist_csr(&path, &sample(), None).unwrap();
        // Truncate below the declared size.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(CSR_HEADER_BYTES as u64 + 8).unwrap();
        drop(f);
        assert!(matches!(
            CsrFile::open(&path),
            Err(CoreError::SizeMismatch { .. } | CoreError::BadHeader { .. })
        ));
        assert!(CsrFile::open(dir.path().join("missing.m3csr")).is_err());

        // Corrupt the final indptr entry: endpoints no longer match nnz.
        let path2 = dir.path().join("c.m3csr");
        persist_csr(&path2, &sample(), None).unwrap();
        let mut bytes = std::fs::read(&path2).unwrap();
        let h = CsrHeader::new(3, 5, 5, false);
        let off = h.indptr_offset as usize + 3 * 8;
        bytes[off..off + 8].copy_from_slice(&999u64.to_le_bytes());
        std::fs::write(&path2, &bytes).unwrap();
        assert!(matches!(
            CsrFile::open(&path2),
            Err(CoreError::BadHeader { .. })
        ));
    }

    #[test]
    fn advise_is_best_effort() {
        let dir = tempdir().unwrap();
        let file = persist_csr(dir.path().join("a.m3csr"), &sample(), None).unwrap();
        for pattern in AccessPattern::ALL {
            file.advise_pattern(pattern);
            SparseRowStore::advise(&file, pattern);
        }
        // The in-memory impl ignores advice without panicking.
        sample().advise(AccessPattern::Sequential);
    }

    #[test]
    fn trait_forwarding_through_references_and_boxes() {
        let m = sample();
        let by_ref: &CsrMatrix = &m;
        assert_eq!(SparseRowStore::n_rows(&by_ref), 3);
        assert_eq!(SparseRowStore::row(&by_ref, 0), m.row(0));
        let boxed: Box<dyn SparseRowStore + Sync> = Box::new(m.clone());
        assert_eq!(boxed.shape(), (3, 5));
        assert_eq!(boxed.nnz(), 5);
        assert!(!boxed.is_empty());
        boxed.advise(AccessPattern::Sequential);
    }

    #[test]
    fn persist_rejects_mismatched_labels() {
        let dir = tempdir().unwrap();
        let err = persist_csr(dir.path().join("x.m3csr"), &sample(), Some(&[1.0])).unwrap_err();
        assert!(matches!(err, CoreError::BadHeader { .. }));
    }
}
