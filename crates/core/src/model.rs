//! The M3 model artifact container format (`ModelFile`) and the in-place
//! parameter storage ([`ParamVec`] / [`ParamMatrix`]) it hands out.
//!
//! Training proved the paper's thesis — mmap makes "where the *data* lives"
//! a one-line change — and this module applies the same discipline to fitted
//! models so the serving path gets it too: a model artifact is a single
//! page-aligned binary file that is opened with `mmap`, validated in O(1)
//! from its header, and whose weight payload is then used **in place**.
//! Zero copy, zero deserialize: loading a multi-gigabyte model costs a
//! header read, and its pages fault in lazily (or eagerly, via the
//! `MADV_WILLNEED` hint issued at open so first-request latency does not eat
//! the page faults).
//!
//! ## On-disk layout (version 1)
//!
//! ```text
//! offset 0    : 4096-byte header (magic "M3MODL01", version, flags, kind,
//!               n_features, n_outputs, n_params, payload offset)
//! offset 4096 : payload — n_params little-endian f64, one contiguous
//!               page-aligned section whose internal layout is fixed by the
//!               model kind (see [`ModelKind`])
//! ```
//!
//! The payload layout per kind (`d` = `n_features`, `k` = `n_outputs`):
//!
//! | kind         | payload                                    | `n_params`    |
//! |--------------|--------------------------------------------|---------------|
//! | `Logistic`   | `weights[d] ++ [bias]`                     | `d + 1`       |
//! | `Softmax`    | `k` blocks of `weights[d] ++ [bias]`       | `k * (d + 1)` |
//! | `Linear`     | `weights[d] ++ [bias]`                     | `d + 1`       |
//! | `GaussianNb` | `log_priors[k] ++ means[k*d] ++ vars[k*d]` | `k * (1+2d)`  |
//! | `KMeans`     | `centroids[k*d] ++ [inertia]`              | `k * d + 1`   |
//! | `Scaler`     | `mean[d] ++ std_dev[d]`                    | `2 * d`       |
//!
//! The header/validation/advise discipline is shared with [`crate::Dataset`]
//! and [`crate::CsrFile`] through [`crate::container`]: corrupt or truncated
//! artifacts fail [`ModelFile::open`] with typed [`CoreError`]s, never
//! panics, and untrusted header fields go through checked arithmetic.

use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use memmap2::{Mmap, MmapMut};

use crate::container::{
    decode_preamble, encode_checksums, section_slice, SectionChecksum, CHECKSUM_BLOCK_OFFSET,
};
use crate::error::{CoreError, Result};
use crate::{faults, AccessPattern, ELEMENT_BYTES, PAGE_SIZE};

/// Magic bytes identifying an M3 model artifact.
pub const MODEL_MAGIC: [u8; 8] = *b"M3MODL01";
/// Current on-disk model format version.
pub const MODEL_FORMAT_VERSION: u32 = 1;
/// Size of the fixed model header block (one page).
pub const MODEL_HEADER_BYTES: usize = PAGE_SIZE;
/// Size of the encoded portion of the header.
pub const MODEL_HEADER_ENCODED_BYTES: usize = 56;

/// The family of model stored in a [`ModelFile`], which fixes the payload
/// layout (see the module-level table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum ModelKind {
    /// Binary logistic regression: `weights[d] ++ [bias]`.
    Logistic = 1,
    /// Multinomial softmax regression: `k` blocks of `weights[d] ++ [bias]`.
    Softmax = 2,
    /// Linear (ridge) regression: `weights[d] ++ [bias]`.
    Linear = 3,
    /// Gaussian naive Bayes: `log_priors[k] ++ means[k*d] ++ variances[k*d]`.
    GaussianNb = 4,
    /// K-means clustering: `centroids[k*d] ++ [inertia]`.
    KMeans = 5,
    /// Standardising scaler: `mean[d] ++ std_dev[d]`.
    Scaler = 6,
}

impl ModelKind {
    /// All defined kinds.
    pub const ALL: [ModelKind; 6] = [
        ModelKind::Logistic,
        ModelKind::Softmax,
        ModelKind::Linear,
        ModelKind::GaussianNb,
        ModelKind::KMeans,
        ModelKind::Scaler,
    ];

    /// The on-disk discriminant.
    pub fn as_u32(self) -> u32 {
        self as u32
    }

    /// Parse an on-disk discriminant.
    pub fn from_u32(v: u32) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.as_u32() == v)
    }

    /// A short lowercase name for reports and file listings.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Logistic => "logistic",
            ModelKind::Softmax => "softmax",
            ModelKind::Linear => "linear",
            ModelKind::GaussianNb => "gaussian_nb",
            ModelKind::KMeans => "kmeans",
            ModelKind::Scaler => "scaler",
        }
    }

    /// The exact payload length (in `f64` elements) this kind requires for
    /// the given shape, or `None` when the shape is invalid for the kind or
    /// its layout overflows `u64`.  Untrusted header fields are validated
    /// against this with checked arithmetic.
    pub fn expected_params(self, n_features: u64, n_outputs: u64) -> Option<u64> {
        if n_features == 0 {
            return None;
        }
        let single_output = n_outputs == 1;
        match self {
            ModelKind::Logistic | ModelKind::Linear => {
                single_output.then(|| n_features.checked_add(1))?
            }
            ModelKind::Scaler => single_output.then(|| n_features.checked_mul(2))?,
            ModelKind::Softmax => {
                (n_outputs >= 2).then(|| n_features.checked_add(1)?.checked_mul(n_outputs))?
            }
            ModelKind::GaussianNb => (n_outputs >= 1).then(|| {
                n_features
                    .checked_mul(2)?
                    .checked_add(1)?
                    .checked_mul(n_outputs)
            })?,
            ModelKind::KMeans => {
                (n_outputs >= 1).then(|| n_features.checked_mul(n_outputs)?.checked_add(1))?
            }
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parsed model-artifact header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelHeader {
    /// On-disk format version.
    pub version: u32,
    /// The stored model family.
    pub kind: ModelKind,
    /// Number of input features (`d`).
    pub n_features: u64,
    /// Number of outputs (`k`): classes for classifiers, centroids for
    /// k-means, 1 for regressors and scalers.
    pub n_outputs: u64,
    /// Payload length in `f64` elements.
    pub n_params: u64,
    /// Byte offset of the payload section (always one page).
    pub payload_offset: u64,
}

impl ModelHeader {
    /// Construct the header for a model of the given kind and shape.
    ///
    /// # Panics
    /// Panics when the shape is invalid for the kind (see
    /// [`ModelKind::expected_params`]); untrusted headers read from files go
    /// through the checked path in [`decode`](Self::decode) instead.
    pub fn new(kind: ModelKind, n_features: u64, n_outputs: u64) -> Self {
        Self::checked_new(kind, n_features, n_outputs).expect("model shape is invalid for its kind")
    }

    /// [`new`](Self::new) with checked arithmetic for *untrusted* shape
    /// fields read from a file: `None` when the shape is invalid for the
    /// kind or its payload would not even fit in a `u64`.
    fn checked_new(kind: ModelKind, n_features: u64, n_outputs: u64) -> Option<Self> {
        let n_params = kind.expected_params(n_features, n_outputs)?;
        let payload_offset = MODEL_HEADER_BYTES as u64;
        // The payload section (and the usize conversions open() performs)
        // must not overflow either.
        payload_offset.checked_add(n_params.checked_mul(ELEMENT_BYTES as u64)?)?;
        Some(Self {
            version: MODEL_FORMAT_VERSION,
            kind,
            n_features,
            n_outputs,
            n_params,
            payload_offset,
        })
    }

    /// Total file size implied by this header.
    pub fn file_bytes(&self) -> u64 {
        self.payload_offset + self.n_params * ELEMENT_BYTES as u64
    }

    /// Size of the payload section in bytes.
    pub fn payload_bytes(&self) -> u64 {
        self.n_params * ELEMENT_BYTES as u64
    }

    /// Serialise into the fixed-size header block.
    pub fn encode(&self) -> [u8; MODEL_HEADER_ENCODED_BYTES] {
        let mut buf = [0u8; MODEL_HEADER_ENCODED_BYTES];
        buf[0..8].copy_from_slice(&MODEL_MAGIC);
        buf[8..12].copy_from_slice(&self.version.to_le_bytes());
        buf[12..16].copy_from_slice(&0u32.to_le_bytes()); // flags (reserved)
        buf[16..20].copy_from_slice(&self.kind.as_u32().to_le_bytes());
        buf[20..24].copy_from_slice(&0u32.to_le_bytes()); // padding
        buf[24..32].copy_from_slice(&self.n_features.to_le_bytes());
        buf[32..40].copy_from_slice(&self.n_outputs.to_le_bytes());
        buf[40..48].copy_from_slice(&self.n_params.to_le_bytes());
        buf[48..56].copy_from_slice(&self.payload_offset.to_le_bytes());
        buf
    }

    /// Parse a header from the first bytes of a file and check that the
    /// shape, payload length and section offset are internally consistent.
    ///
    /// # Errors
    /// Returns [`CoreError::BadHeader`] on a wrong magic, an unsupported
    /// version, an unknown kind, or a shape/layout mismatch — with checked
    /// arithmetic throughout, so crafted headers near `u64::MAX` surface as
    /// errors rather than overflow panics.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let bad = |reason: String| CoreError::BadHeader { reason };
        decode_preamble(
            bytes,
            &MODEL_MAGIC,
            MODEL_FORMAT_VERSION,
            MODEL_HEADER_ENCODED_BYTES,
        )?;
        let kind_raw = u32::from_le_bytes(bytes[16..20].try_into().unwrap());
        let kind = ModelKind::from_u32(kind_raw)
            .ok_or_else(|| bad(format!("unknown model kind {kind_raw}")))?;
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let header = Self {
            version: MODEL_FORMAT_VERSION,
            kind,
            n_features: u64_at(24),
            n_outputs: u64_at(32),
            n_params: u64_at(40),
            payload_offset: u64_at(48),
        };
        let expected = Self::checked_new(kind, header.n_features, header.n_outputs)
            .ok_or_else(|| bad("shape is invalid for the model kind".to_string()))?;
        if header != expected {
            return Err(bad(
                "payload length or offset disagrees with the shape in the header".to_string(),
            ));
        }
        Ok(header)
    }
}

/// A model parameter vector that is either owned (fresh from training) or a
/// view into a memory-mapped [`ModelFile`] (fresh from [`ModelFile::open`],
/// zero-copy).
///
/// Dereferences to `&[f64]`, so model code indexes and iterates it exactly
/// like the `Vec<f64>` it replaces — prediction never knows whether its
/// weights live in RAM or on disk, which is the M3 one-line-change story
/// applied to serving.  Cloning a mapped vector clones an [`Arc`], not the
/// parameters.
#[derive(Clone)]
pub struct ParamVec(Repr);

#[derive(Clone)]
enum Repr {
    Owned(Vec<f64>),
    Mapped {
        map: Arc<Mmap>,
        /// Byte offset of the first element; 8-aligned (checked at build).
        offset: usize,
        /// Length in elements; in bounds (checked at build).
        len: usize,
    },
}

impl ParamVec {
    /// Borrow the parameters.
    pub fn as_slice(&self) -> &[f64] {
        match &self.0 {
            Repr::Owned(v) => v,
            Repr::Mapped { map, offset, len } => {
                let bytes = &map[*offset..*offset + *len * ELEMENT_BYTES];
                // SAFETY: bounds and 8-alignment were checked when this view
                // was constructed (ModelFile::param_vec), the mapping is
                // pinned by the Arc, and f64 is plain-old-data.
                unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f64>(), *len) }
            }
        }
    }

    /// `true` when the parameters are a zero-copy view into a mapped
    /// artifact (as opposed to owned memory).
    pub fn is_mapped(&self) -> bool {
        matches!(self.0, Repr::Mapped { .. })
    }
}

impl std::ops::Deref for ParamVec {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl From<Vec<f64>> for ParamVec {
    fn from(v: Vec<f64>) -> Self {
        ParamVec(Repr::Owned(v))
    }
}

impl<'a> IntoIterator for &'a ParamVec {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for ParamVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for ParamVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// A row-major matrix of model parameters over a [`ParamVec`] — the
/// matrix-shaped analogue (k-means centroids, per-class means) of the same
/// owned-or-mapped story.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamMatrix {
    values: ParamVec,
    n_rows: usize,
    n_cols: usize,
}

impl ParamMatrix {
    /// Wrap `values` as an `n_rows × n_cols` row-major matrix.
    ///
    /// # Errors
    /// Fails with [`CoreError::InvalidShape`] when the length does not match
    /// the shape.
    pub fn new(values: ParamVec, n_rows: usize, n_cols: usize) -> Result<Self> {
        if n_rows.checked_mul(n_cols) != Some(values.len()) {
            return Err(CoreError::InvalidShape {
                rows: n_rows,
                cols: n_cols,
            });
        }
        Ok(Self {
            values,
            n_rows,
            n_cols,
        })
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics when `i >= n_rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n_rows, "row {i} out of bounds ({})", self.n_rows);
        &self.values[i * self.n_cols..(i + 1) * self.n_cols]
    }

    /// The whole matrix as one row-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// `true` when the values are a zero-copy view into a mapped artifact.
    pub fn is_mapped(&self) -> bool {
        self.values.is_mapped()
    }

    /// Copy into an owned [`m3_linalg::DenseMatrix`] (for code that needs to
    /// mutate, e.g. warm-starting k-means from an existing model).
    pub fn to_dense(&self) -> m3_linalg::DenseMatrix {
        m3_linalg::DenseMatrix::from_vec(self.values.to_vec(), self.n_rows, self.n_cols)
            .expect("shape was validated at construction")
    }
}

impl From<m3_linalg::DenseMatrix> for ParamMatrix {
    fn from(m: m3_linalg::DenseMatrix) -> Self {
        let (n_rows, n_cols) = (m.n_rows(), m.n_cols());
        Self {
            values: ParamVec::from(m.as_slice().to_vec()),
            n_rows,
            n_cols,
        }
    }
}

/// A read-only memory-mapped model artifact.
///
/// Opening performs only O(1) header validation, then issues
/// `madvise(WILLNEED)` for the payload so the kernel starts faulting the
/// weights in before the first request needs them.  Cloning shares the
/// mapping behind an [`Arc`], and every [`ParamVec`] handed out pins it.
#[derive(Debug, Clone)]
pub struct ModelFile {
    map: Arc<Mmap>,
    path: PathBuf,
    header: ModelHeader,
}

impl ModelFile {
    /// Memory-map an existing model artifact.
    ///
    /// # Errors
    /// Fails when the file cannot be opened or mapped, its header is
    /// malformed (wrong magic/version/kind, inconsistent shape — see
    /// [`ModelHeader::decode`]), or its size disagrees with the header.
    /// Corruption surfaces as typed errors, never panics.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .open(&path)
            .map_err(|e| CoreError::io(&path, e))?;
        // SAFETY: read-only mapping, never mutably aliased by this process.
        let map = unsafe { Mmap::map(&file) }.map_err(|e| CoreError::io(&path, e))?;
        let header = ModelHeader::decode(&map[..map.len().min(MODEL_HEADER_BYTES)])?;
        let actual = map.len() as u64;
        if actual < header.file_bytes() {
            return Err(CoreError::SizeMismatch {
                path,
                expected_bytes: header.file_bytes(),
                actual_bytes: actual,
            });
        }
        // Validate the payload section once so the accessors are panic-free.
        // SAFETY: f64 is plain-old-data.
        unsafe {
            section_slice::<f64>(&map[..], header.payload_offset, header.n_params as usize)?;
        }
        let this = Self {
            map: Arc::new(map),
            path,
            header,
        };
        if crate::container::verify_on_open() {
            this.verify()?;
        }
        // Serving loads a model to use it immediately: tell the kernel to
        // start faulting the weights in now rather than on first request.
        this.advise(AccessPattern::WillNeed);
        Ok(this)
    }

    /// Open and verify the payload checksum — [`ModelFile::open`] followed
    /// by [`ModelFile::verify`].  This is what the serve registry uses
    /// unconditionally before publishing a swap.
    ///
    /// # Errors
    /// Everything `open` can fail with, plus
    /// [`CoreError::ChecksumMismatch`] for a corrupted payload and
    /// [`CoreError::BadHeader`] for a file carrying no checksum block.
    pub fn open_verified(path: impl AsRef<Path>) -> Result<Self> {
        let file = Self::open(path)?;
        file.verify()?;
        Ok(file)
    }

    /// Re-hash the payload against the header's checksum block.  Reads
    /// (faults in) the whole payload, unlike `open`; also run automatically
    /// when `M3_VERIFY` is set.
    ///
    /// # Errors
    /// [`CoreError::ChecksumMismatch`] naming the corrupt section, or
    /// [`CoreError::BadHeader`] when the file carries no checksum block.
    pub fn verify(&self) -> Result<()> {
        crate::container::verify_checksums(&self.map, &self.path)
    }

    /// The parsed header.
    pub fn header(&self) -> &ModelHeader {
        &self.header
    }

    /// The stored model family.
    pub fn kind(&self) -> ModelKind {
        self.header.kind
    }

    /// Number of input features.
    pub fn n_features(&self) -> usize {
        self.header.n_features as usize
    }

    /// Number of outputs (classes / centroids; 1 for regressors).
    pub fn n_outputs(&self) -> usize {
        self.header.n_outputs as usize
    }

    /// Payload length in `f64` elements.
    pub fn n_params(&self) -> usize {
        self.header.n_params as usize
    }

    /// The path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The whole payload as one slice (layout fixed by [`Self::kind`]).
    pub fn payload(&self) -> &[f64] {
        // SAFETY: validated at open; f64 is plain-old-data.
        unsafe {
            section_slice(
                &self.map[..],
                self.header.payload_offset,
                self.header.n_params as usize,
            )
        }
        .expect("payload section was validated at open")
    }

    /// A zero-copy [`ParamVec`] over payload elements `start..start + len`,
    /// sharing (and pinning) this file's mapping.
    ///
    /// # Errors
    /// Fails with [`CoreError::BadHeader`] when the range exceeds the
    /// payload.
    pub fn param_vec(&self, start: usize, len: usize) -> Result<ParamVec> {
        let end = start.checked_add(len).ok_or(CoreError::BadHeader {
            reason: "parameter range overflows".to_string(),
        })?;
        if end > self.n_params() {
            return Err(CoreError::BadHeader {
                reason: format!(
                    "parameter range {start}..{end} exceeds the {} stored parameters",
                    self.n_params()
                ),
            });
        }
        Ok(ParamVec(Repr::Mapped {
            map: Arc::clone(&self.map),
            offset: self.header.payload_offset as usize + start * ELEMENT_BYTES,
            len,
        }))
    }

    /// Forward an access-pattern hint for the whole mapping to the kernel
    /// (`madvise`).  Best-effort: errors are ignored, as with the data
    /// stores.
    pub fn advise(&self, pattern: AccessPattern) {
        #[cfg(unix)]
        {
            let _ = self.map.advise(pattern.to_memmap_advice());
        }
        #[cfg(not(unix))]
        {
            let _ = pattern;
        }
    }
}

/// Streaming writer for the model artifact format.
///
/// The file is created at its final size up front, mapped read-write, and
/// filled by appending parameter slices in payload order — the same
/// discipline as [`crate::CsrFileBuilder`].  The payload length is fixed by
/// the kind and shape declared at creation, and [`finish`](Self::finish)
/// refuses underfilled files.
///
/// The builder works on a `.tmp` sibling of the target path;
/// [`finish`](Self::finish) checksums the payload, fsyncs and atomically
/// renames into place, so a crash mid-save never clobbers the previously
/// published artifact.  An abandoned builder removes its temporary file on
/// drop.
#[derive(Debug)]
pub struct ModelFileBuilder {
    map: Option<MmapMut>,
    file: Option<File>,
    path: PathBuf,
    tmp: PathBuf,
    header: ModelHeader,
    params_pushed: usize,
    finished: bool,
}

impl ModelFileBuilder {
    /// Create (or truncate) `path` sized for a `kind` model with
    /// `n_features` inputs and `n_outputs` outputs.
    ///
    /// # Errors
    /// Fails when the shape is invalid for the kind, or when the file cannot
    /// be created, sized or mapped.
    pub fn create(
        path: impl AsRef<Path>,
        kind: ModelKind,
        n_features: usize,
        n_outputs: usize,
    ) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let header = ModelHeader::checked_new(kind, n_features as u64, n_outputs as u64).ok_or(
            CoreError::InvalidShape {
                rows: n_outputs,
                cols: n_features,
            },
        )?;
        let tmp = faults::tmp_sibling(&path);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| CoreError::io(&tmp, e))?;
        faults::set_len(&file, header.file_bytes(), &tmp).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            CoreError::io(&tmp, e)
        })?;
        // SAFETY: we hold the only mapping of a file we just created.
        let mut map = unsafe { MmapMut::map_mut(&file) }.map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            CoreError::io(&tmp, e)
        })?;
        map[..MODEL_HEADER_ENCODED_BYTES].copy_from_slice(&header.encode());
        Ok(Self {
            map: Some(map),
            file: Some(file),
            path,
            tmp,
            header,
            params_pushed: 0,
            finished: false,
        })
    }

    /// Append a parameter slice to the payload, in the kind's layout order.
    ///
    /// # Errors
    /// Fails when the payload budget declared at creation would be exceeded.
    pub fn push_params(&mut self, values: &[f64]) -> Result<()> {
        if self.params_pushed + values.len() > self.header.n_params as usize {
            return Err(CoreError::BadHeader {
                reason: format!(
                    "parameter budget of {} exhausted at element {}",
                    self.header.n_params, self.params_pushed
                ),
            });
        }
        let off = self.header.payload_offset as usize + self.params_pushed * ELEMENT_BYTES;
        let map = self.map.as_mut().expect("builder already finished");
        for (k, &v) in values.iter().enumerate() {
            map[off + k * ELEMENT_BYTES..off + (k + 1) * ELEMENT_BYTES]
                .copy_from_slice(&v.to_le_bytes());
        }
        self.params_pushed += values.len();
        Ok(())
    }

    /// Number of payload elements pushed so far.
    pub fn params_pushed(&self) -> usize {
        self.params_pushed
    }

    /// Checksum the payload, flush, fsync, atomically rename the temporary
    /// file into place and reopen the finished artifact read-only.
    ///
    /// # Errors
    /// Fails when fewer parameters were pushed than the kind's layout
    /// requires, or on flush/sync/rename/reopen I/O errors.  On failure the
    /// target path still holds whatever artifact (if any) was there before;
    /// the temporary file is removed when the builder drops.
    pub fn finish(mut self) -> Result<ModelFile> {
        if self.params_pushed != self.header.n_params as usize {
            return Err(CoreError::BadHeader {
                reason: format!(
                    "declared {} parameters but received {}",
                    self.header.n_params, self.params_pushed
                ),
            });
        }
        let h = self.header;
        {
            let map = self.map.as_mut().expect("builder already finished");
            let sections = [SectionChecksum::of(
                "payload",
                map,
                h.payload_offset,
                h.payload_bytes(),
            )];
            let block = encode_checksums(&sections);
            map[CHECKSUM_BLOCK_OFFSET..CHECKSUM_BLOCK_OFFSET + block.len()].copy_from_slice(&block);
        }
        let map = self.map.as_ref().expect("builder already finished");
        faults::flush_map(map, &self.tmp).map_err(|e| CoreError::io(&self.tmp, e))?;
        let file = self.file.as_ref().expect("builder already finished");
        faults::sync_file(file, &self.tmp).map_err(|e| CoreError::io(&self.tmp, e))?;
        drop(self.map.take());
        drop(self.file.take());
        faults::rename(&self.tmp, &self.path).map_err(|e| CoreError::io(&self.tmp, e))?;
        if let Some(parent) = self.path.parent() {
            faults::sync_dir(parent).map_err(|e| CoreError::io(parent, e))?;
        }
        self.finished = true;
        ModelFile::open(&self.path)
    }
}

impl Drop for ModelFileBuilder {
    fn drop(&mut self) {
        if !self.finished {
            drop(self.map.take());
            drop(self.file.take());
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempfile::tempdir;

    #[test]
    fn kind_round_trips_and_names() {
        for kind in ModelKind::ALL {
            assert_eq!(ModelKind::from_u32(kind.as_u32()), Some(kind));
            assert!(!kind.name().is_empty());
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(ModelKind::from_u32(0), None);
        assert_eq!(ModelKind::from_u32(99), None);
    }

    #[test]
    fn expected_params_per_kind() {
        let d = 10;
        assert_eq!(ModelKind::Logistic.expected_params(d, 1), Some(11));
        assert_eq!(ModelKind::Logistic.expected_params(d, 2), None);
        assert_eq!(ModelKind::Linear.expected_params(d, 1), Some(11));
        assert_eq!(ModelKind::Scaler.expected_params(d, 1), Some(20));
        assert_eq!(ModelKind::Softmax.expected_params(d, 3), Some(33));
        assert_eq!(ModelKind::Softmax.expected_params(d, 1), None);
        assert_eq!(ModelKind::GaussianNb.expected_params(d, 3), Some(63));
        assert_eq!(ModelKind::KMeans.expected_params(d, 4), Some(41));
        assert_eq!(ModelKind::KMeans.expected_params(0, 4), None);
        // Overflow is an error, not a wrap-around.
        assert_eq!(ModelKind::Softmax.expected_params(u64::MAX, 2), None);
        assert_eq!(ModelKind::GaussianNb.expected_params(u64::MAX / 2, 2), None);
    }

    #[test]
    fn header_round_trip_and_layout() {
        let h = ModelHeader::new(ModelKind::Softmax, 784, 10);
        assert_eq!(ModelHeader::decode(&h.encode()).unwrap(), h);
        assert_eq!(h.payload_offset, MODEL_HEADER_BYTES as u64);
        assert_eq!(h.n_params, 10 * 785);
        assert_eq!(h.payload_bytes(), 10 * 785 * 8);
        assert_eq!(h.file_bytes(), 4096 + 10 * 785 * 8);
    }

    #[test]
    fn bad_headers_are_rejected() {
        let h = ModelHeader::new(ModelKind::Logistic, 8, 1);
        let mut bytes = h.encode();
        bytes[0] = b'X'; // magic
        assert!(matches!(
            ModelHeader::decode(&bytes),
            Err(CoreError::BadHeader { .. })
        ));
        let mut bytes = h.encode();
        bytes[8] = 99; // version
        assert!(ModelHeader::decode(&bytes).is_err());
        let mut bytes = h.encode();
        bytes[16] = 77; // unknown kind
        assert!(ModelHeader::decode(&bytes).is_err());
        let mut bytes = h.encode();
        bytes[40] = 0xFF; // n_params disagrees with the shape
        assert!(ModelHeader::decode(&bytes).is_err());
        assert!(ModelHeader::decode(&h.encode()[..20]).is_err());

        // Crafted shapes near u64::MAX must decode to BadHeader — checked
        // arithmetic, not overflow panics or wrap-around acceptance.
        let mut crafted = h.encode();
        crafted[24..32].copy_from_slice(&u64::MAX.to_le_bytes()); // n_features
        assert!(matches!(
            ModelHeader::decode(&crafted),
            Err(CoreError::BadHeader { .. })
        ));
    }

    #[test]
    fn builder_round_trips_and_enforces_budget() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("m.m3mdl");
        let mut b = ModelFileBuilder::create(&path, ModelKind::Logistic, 3, 1).unwrap();
        b.push_params(&[1.0, -2.0, 3.0]).unwrap();
        assert_eq!(b.params_pushed(), 3);
        assert!(b.push_params(&[0.5, 0.5]).is_err()); // budget
        b.push_params(&[0.25]).unwrap();
        let file = b.finish().unwrap();
        assert_eq!(file.kind(), ModelKind::Logistic);
        assert_eq!(file.n_features(), 3);
        assert_eq!(file.n_outputs(), 1);
        assert_eq!(file.n_params(), 4);
        assert_eq!(file.payload(), &[1.0, -2.0, 3.0, 0.25]);
        assert!(file.path().ends_with("m.m3mdl"));
        assert_eq!(file.header().kind, ModelKind::Logistic);
        for p in AccessPattern::ALL {
            file.advise(p);
        }

        // Underfilled builders refuse to finish.
        let b =
            ModelFileBuilder::create(dir.path().join("u.m3mdl"), ModelKind::Linear, 3, 1).unwrap();
        assert!(b.finish().is_err());

        // Invalid shapes refuse to create.
        assert!(
            ModelFileBuilder::create(dir.path().join("x.m3mdl"), ModelKind::Softmax, 3, 1).is_err()
        );
    }

    #[test]
    fn param_vec_views_are_zero_copy_and_slice_like() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("v.m3mdl");
        let mut b = ModelFileBuilder::create(&path, ModelKind::Scaler, 4, 1).unwrap();
        b.push_params(&[1.0, 2.0, 3.0, 4.0, 0.1, 0.2, 0.3, 0.4])
            .unwrap();
        let file = b.finish().unwrap();

        let mean = file.param_vec(0, 4).unwrap();
        let std_dev = file.param_vec(4, 4).unwrap();
        assert!(mean.is_mapped());
        assert_eq!(&mean[..], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(std_dev.iter().sum::<f64>(), 1.0);
        // The view is literally the mapped payload — same address.
        assert_eq!(mean.as_slice().as_ptr(), file.payload().as_ptr());

        // Slice-like surface: Deref, IntoIterator, PartialEq, Debug, Clone.
        let owned = ParamVec::from(vec![1.0, 2.0, 3.0, 4.0]);
        assert!(!owned.is_mapped());
        assert_eq!(owned, mean);
        assert_eq!(owned.clone(), mean.clone());
        assert_eq!((&owned).into_iter().count(), 4);
        assert_eq!(format!("{owned:?}"), format!("{mean:?}"));
        assert_eq!(owned.len(), 4);

        // Out-of-range views are rejected.
        assert!(file.param_vec(6, 4).is_err());
        assert!(file.param_vec(usize::MAX, 2).is_err());

        // The view keeps the mapping alive after the file handle is gone.
        drop(file);
        assert_eq!(mean[3], 4.0);
    }

    #[test]
    fn param_matrix_shapes_and_conversions() {
        let m = ParamMatrix::new(ParamVec::from(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]), 2, 3).unwrap();
        assert_eq!(m.n_rows(), 2);
        assert_eq!(m.n_cols(), 3);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.as_slice().len(), 6);
        assert!(!m.is_mapped());
        let dense = m.to_dense();
        assert_eq!(dense.row(0), &[1.0, 2.0, 3.0]);
        let back = ParamMatrix::from(dense);
        assert_eq!(back, m);

        assert!(ParamMatrix::new(ParamVec::from(vec![0.0; 5]), 2, 3).is_err());
    }

    #[test]
    fn open_rejects_truncated_and_corrupt_files() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("t.m3mdl");
        let mut b = ModelFileBuilder::create(&path, ModelKind::Linear, 64, 1).unwrap();
        b.push_params(&vec![0.5; 65]).unwrap();
        b.finish().unwrap();

        // Truncate below the declared size.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(MODEL_HEADER_BYTES as u64 + 8).unwrap();
        drop(f);
        assert!(matches!(
            ModelFile::open(&path),
            Err(CoreError::SizeMismatch { .. } | CoreError::BadHeader { .. })
        ));
        assert!(ModelFile::open(dir.path().join("missing.m3mdl")).is_err());

        // A header-only file (no payload at all) is rejected too.
        let path2 = dir.path().join("h.m3mdl");
        let header = ModelHeader::new(ModelKind::Logistic, 1000, 1);
        let mut bytes = vec![0u8; MODEL_HEADER_BYTES];
        bytes[..MODEL_HEADER_ENCODED_BYTES].copy_from_slice(&header.encode());
        std::fs::write(&path2, &bytes).unwrap();
        assert!(matches!(
            ModelFile::open(&path2),
            Err(CoreError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn clone_shares_the_mapping() {
        let dir = tempdir().unwrap();
        let mut b = ModelFileBuilder::create(dir.path().join("c.m3mdl"), ModelKind::Logistic, 2, 1)
            .unwrap();
        b.push_params(&[1.0, 2.0, 3.0]).unwrap();
        let file = b.finish().unwrap();
        let clone = file.clone();
        assert_eq!(clone.payload().as_ptr(), file.payload().as_ptr());
    }
}
