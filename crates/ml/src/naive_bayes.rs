//! Gaussian naive Bayes.
//!
//! A single-pass learner: class priors, per-class per-feature means and
//! variances are all accumulated in one sequential sweep (Welford updates per
//! class), making it the cheapest possible M3 workload — one scan, train
//! done.  Included both as a baseline classifier and as the "single-sweep"
//! extreme for the access-pattern ablation benchmarks.  The sweep runs
//! through [`ExecContext::for_each_chunk`], and the estimator carries the
//! same `Sync` storage bound as every other estimator in the crate (the seed
//! version was the one odd one out).

use m3_core::storage::RowStore;
use m3_core::{ExecContext, ParamVec};
use m3_linalg::ops;

use crate::api::{Estimator, Model};
use crate::{MlError, Result};

/// A trained Gaussian naive-Bayes classifier.
///
/// The parameters live in [`ParamVec`]s: owned after training, or zero-copy
/// views into a memory-mapped artifact after [`GaussianNb::load`].
#[derive(Debug, Clone)]
pub struct GaussianNb {
    /// Log prior of each class.
    pub log_priors: ParamVec,
    /// Per-class per-feature means (`n_classes × n_features`, row-major).
    pub means: ParamVec,
    /// Per-class per-feature variances (same layout, floored for stability).
    pub variances: ParamVec,
    /// Number of classes.
    pub n_classes: usize,
    /// Number of features.
    pub n_features: usize,
}

/// Trainer for [`GaussianNb`].
#[derive(Debug, Clone)]
pub struct GaussianNbTrainer {
    /// Number of classes.
    pub n_classes: usize,
    /// Variance floor added to every estimated variance for numerical
    /// stability (scikit-learn's `var_smoothing` analogue).
    pub var_smoothing: f64,
}

impl GaussianNbTrainer {
    /// Create a trainer for `n_classes` classes.
    pub fn new(n_classes: usize) -> Self {
        Self {
            n_classes,
            var_smoothing: 1e-9,
        }
    }

    /// Train from `data` and integer labels (stored as `f64`).
    ///
    /// # Errors
    /// Fails on empty data, shape mismatches, or labels outside
    /// `0..n_classes`.
    #[deprecated(
        since = "0.1.0",
        note = "use `Estimator::fit(&self, data, labels, &ExecContext)` instead"
    )]
    pub fn fit<S: RowStore + Sync + ?Sized>(&self, data: &S, labels: &[f64]) -> Result<GaussianNb> {
        Estimator::fit(self, data, labels, &ExecContext::new())
    }
}

impl Estimator for GaussianNbTrainer {
    type Model = GaussianNb;

    fn fit<S: RowStore + Sync + ?Sized>(
        &self,
        data: &S,
        labels: &[f64],
        ctx: &ExecContext,
    ) -> Result<GaussianNb> {
        let n = data.n_rows();
        let d = data.n_cols();
        let k = self.n_classes;
        if n == 0 || d == 0 {
            return Err(MlError::InvalidData("training data is empty".to_string()));
        }
        if labels.len() != n {
            return Err(MlError::ShapeMismatch {
                expected: format!("{n} labels"),
                found: format!("{} labels", labels.len()),
            });
        }
        if labels
            .iter()
            .any(|&l| l < 0.0 || l >= k as f64 || l.fract() != 0.0)
        {
            return Err(MlError::InvalidData(format!(
                "labels must be integers in 0..{k}"
            )));
        }

        // Welford accumulation is order-dependent, so this is one sequential
        // chunked sweep under the context's chunking/advice policy.
        let mut counts = vec![0u64; k];
        let mut means = vec![0.0; k * d];
        let mut m2 = vec![0.0; k * d];
        ctx.for_each_chunk(data, |chunk| {
            for (r, row) in chunk.rows_with_index() {
                let class = labels[r] as usize;
                counts[class] += 1;
                let cnt = counts[class] as f64;
                let mean_row = &mut means[class * d..(class + 1) * d];
                let m2_row = &mut m2[class * d..(class + 1) * d];
                for j in 0..d {
                    let delta = row[j] - mean_row[j];
                    mean_row[j] += delta / cnt;
                    m2_row[j] += delta * (row[j] - mean_row[j]);
                }
            }
        });

        // Finish: variances with smoothing, log priors.
        let max_var = {
            // Global variance scale for the smoothing term.
            let mut total = 0.0;
            for c in 0..k {
                if counts[c] > 0 {
                    for j in 0..d {
                        total += m2[c * d + j] / counts[c] as f64;
                    }
                }
            }
            (total / d as f64).max(1.0)
        };
        let floor = self.var_smoothing * max_var;
        let mut variances = vec![0.0; k * d];
        for c in 0..k {
            for j in 0..d {
                let v = if counts[c] > 0 {
                    m2[c * d + j] / counts[c] as f64
                } else {
                    0.0
                };
                variances[c * d + j] = v + floor.max(1e-12);
            }
        }
        let log_priors: Vec<f64> = counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    f64::NEG_INFINITY
                } else {
                    (c as f64 / n as f64).ln()
                }
            })
            .collect();

        Ok(GaussianNb {
            log_priors: log_priors.into(),
            means: means.into(),
            variances: variances.into(),
            n_classes: k,
            n_features: d,
        })
    }
}

impl GaussianNb {
    /// Unnormalised per-class log-posteriors of a row, written into `scores`.
    fn log_scores_into(&self, row: &[f64], scores: &mut [f64]) {
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        let d = self.n_features;
        for (c, score) in scores.iter_mut().enumerate().take(self.n_classes) {
            if self.log_priors[c] == f64::NEG_INFINITY {
                *score = f64::NEG_INFINITY;
                continue;
            }
            let mut acc = self.log_priors[c];
            let means = &self.means[c * d..(c + 1) * d];
            let vars = &self.variances[c * d..(c + 1) * d];
            for j in 0..d {
                let diff = row[j] - means[j];
                acc -= 0.5 * ((std::f64::consts::TAU * vars[j]).ln() + diff * diff / vars[j]);
            }
            *score = acc;
        }
    }

    /// Unnormalised per-class log-posteriors of a row.
    pub fn log_scores_row(&self, row: &[f64]) -> Vec<f64> {
        let mut scores = vec![0.0; self.n_classes];
        self.log_scores_into(row, &mut scores);
        scores
    }

    /// Most probable class for a row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let scores = self.log_scores_row(row);
        ops::argmax(&scores).map(|(i, _)| i as f64).unwrap_or(0.0)
    }

    /// Predicted classes for every row of `data`.
    pub fn predict<S: RowStore + ?Sized>(&self, data: &S) -> Vec<f64> {
        (0..data.n_rows())
            .map(|r| self.predict_row(data.row(r)))
            .collect()
    }

    /// Classification accuracy over `data`.
    pub fn accuracy<S: RowStore + ?Sized>(&self, data: &S, labels: &[f64]) -> f64 {
        crate::metrics::accuracy(&self.predict(data), labels)
    }
}

impl Model for GaussianNb {
    fn n_features(&self) -> usize {
        self.n_features
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        GaussianNb::predict_row(self, row)
    }

    /// Chunked prediction with one reused score buffer (the per-row API
    /// allocates a fresh log-score vector per call).
    fn predict_chunk(&self, chunk: m3_core::chunked::RowChunk<'_>, out: &mut Vec<f64>) {
        let mut scores = vec![0.0; self.n_classes];
        out.reserve(chunk.n_rows());
        for row in chunk.data.chunks_exact(self.n_features.max(1)) {
            self.log_scores_into(row, &mut scores);
            out.push(ops::argmax(&scores).map(|(i, _)| i as f64).unwrap_or(0.0));
        }
    }

    fn score(&self, data: &dyn RowStore, labels: &[f64]) -> f64 {
        self.accuracy(data, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_data::{GaussianBlobs, RowGenerator};
    use m3_linalg::DenseMatrix;

    fn fit(trainer: &GaussianNbTrainer, x: &DenseMatrix, y: &[f64]) -> GaussianNb {
        Estimator::fit(trainer, x, y, &ExecContext::new()).unwrap()
    }

    #[test]
    fn fits_gaussian_blobs_almost_perfectly() {
        let (x, y) = GaussianBlobs::new(3, 5, 10.0, 1.0, 8).materialize(300);
        let model = fit(&GaussianNbTrainer::new(3), &x, &y);
        assert!(model.accuracy(&x, &y) > 0.95);
    }

    #[test]
    fn estimated_means_match_generating_centres() {
        let gen = GaussianBlobs::with_centers(vec![vec![0.0, 5.0], vec![10.0, -5.0]], 0.5, 3);
        let (x, y) = gen.materialize(400);
        let model = fit(&GaussianNbTrainer::new(2), &x, &y);
        for c in 0..2 {
            for j in 0..2 {
                let est = model.means[c * 2 + j];
                let truth = gen.centers()[c][j];
                assert!(
                    (est - truth).abs() < 0.2,
                    "class {c} feature {j}: {est} vs {truth}"
                );
            }
            // Variance should be near 0.25 (std 0.5).
            for j in 0..2 {
                let v = model.variances[c * 2 + j];
                assert!((v - 0.25).abs() < 0.1, "variance {v}");
            }
        }
        // Balanced classes → equal priors.
        assert!((model.log_priors[0] - model.log_priors[1]).abs() < 0.1);
    }

    #[test]
    fn missing_class_gets_zero_prior_and_is_never_predicted() {
        let x = DenseMatrix::from_rows(&[&[0.0], &[0.1], &[10.0], &[10.1]]).unwrap();
        let y = [0.0, 0.0, 1.0, 1.0];
        // Train with 3 classes although class 2 never appears.
        let model = fit(&GaussianNbTrainer::new(3), &x, &y);
        assert_eq!(model.log_priors[2], f64::NEG_INFINITY);
        let preds = model.predict(&x);
        assert!(preds.iter().all(|&p| p != 2.0));
        assert_eq!(preds, vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn trains_from_an_erased_trait_object_store() {
        // The satellite check for the RowStore-consistency fix: GaussianNb now
        // carries the same `Sync` bound as every other estimator, so it can
        // train over a boxed `dyn RowStore + Sync` exactly like the rest.
        let (x, y) = GaussianBlobs::new(2, 3, 8.0, 1.0, 5).materialize(60);
        let erased: Box<dyn RowStore + Sync> = Box::new(x.clone());
        let ctx = ExecContext::new();
        let from_erased = Estimator::fit(&GaussianNbTrainer::new(2), &*erased, &y, &ctx).unwrap();
        let from_dense = Estimator::fit(&GaussianNbTrainer::new(2), &x, &y, &ctx).unwrap();
        assert_eq!(from_erased.means, from_dense.means);
        assert_eq!(from_erased.variances, from_dense.variances);
    }

    #[test]
    fn deprecated_inherent_fit_matches_trait_fit() {
        let (x, y) = GaussianBlobs::new(2, 3, 8.0, 1.0, 9).materialize(50);
        let trainer = GaussianNbTrainer::new(2);
        #[allow(deprecated)]
        let old = GaussianNbTrainer::fit(&trainer, &x, &y).unwrap();
        let new = fit(&trainer, &x, &y);
        assert_eq!(old.means, new.means);
        assert_eq!(old.log_priors, new.log_priors);
    }

    #[test]
    fn validation_errors() {
        let x = DenseMatrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let ctx = ExecContext::new();
        assert!(Estimator::fit(&GaussianNbTrainer::new(2), &x, &[0.0], &ctx).is_err());
        assert!(Estimator::fit(&GaussianNbTrainer::new(2), &x, &[0.0, 5.0], &ctx).is_err());
        let empty = DenseMatrix::zeros(0, 1);
        assert!(Estimator::fit(&GaussianNbTrainer::new(2), &empty, &[], &ctx).is_err());
    }

    #[test]
    fn mmap_and_in_memory_agree() {
        let (x, y) = GaussianBlobs::new(2, 3, 5.0, 1.0, 21).materialize(100);
        let dir = tempfile::tempdir().unwrap();
        let mapped = m3_core::alloc::persist_matrix(dir.path().join("nb.m3"), &x).unwrap();
        let trainer = GaussianNbTrainer::new(2);
        let ctx = ExecContext::new();
        let a = Estimator::fit(&trainer, &x, &y, &ctx).unwrap();
        let b = Estimator::fit(&trainer, &mapped, &y, &ctx).unwrap();
        for (ma, mb) in a.means.iter().zip(&b.means) {
            assert_eq!(ma.to_bits(), mb.to_bits());
        }
        for (va, vb) in a.variances.iter().zip(&b.variances) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
        // Model-trait view.
        let as_model: &dyn Model = &a;
        assert!(as_model.score(&x, &y) > 0.9);
    }
}
