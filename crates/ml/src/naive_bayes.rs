//! Gaussian naive Bayes.
//!
//! A single-pass learner: class priors, per-class per-feature means and
//! variances are all accumulated in one sequential sweep (Welford updates per
//! class), making it the cheapest possible M3 workload — one scan, train
//! done.  Included both as a baseline classifier and as the "single-sweep"
//! extreme for the access-pattern ablation benchmarks.

use m3_core::storage::RowStore;
use m3_core::AccessPattern;
use m3_linalg::ops;

use crate::{MlError, Result};

/// A trained Gaussian naive-Bayes classifier.
#[derive(Debug, Clone)]
pub struct GaussianNb {
    /// Log prior of each class.
    pub log_priors: Vec<f64>,
    /// Per-class per-feature means (`n_classes × n_features`, row-major).
    pub means: Vec<f64>,
    /// Per-class per-feature variances (same layout, floored for stability).
    pub variances: Vec<f64>,
    /// Number of classes.
    pub n_classes: usize,
    /// Number of features.
    pub n_features: usize,
}

/// Trainer for [`GaussianNb`].
#[derive(Debug, Clone)]
pub struct GaussianNbTrainer {
    /// Number of classes.
    pub n_classes: usize,
    /// Variance floor added to every estimated variance for numerical
    /// stability (scikit-learn's `var_smoothing` analogue).
    pub var_smoothing: f64,
}

impl GaussianNbTrainer {
    /// Create a trainer for `n_classes` classes.
    pub fn new(n_classes: usize) -> Self {
        Self {
            n_classes,
            var_smoothing: 1e-9,
        }
    }

    /// Train from `data` and integer labels (stored as `f64`).
    ///
    /// # Errors
    /// Fails on empty data, shape mismatches, or labels outside
    /// `0..n_classes`.
    pub fn fit<S: RowStore + ?Sized>(&self, data: &S, labels: &[f64]) -> Result<GaussianNb> {
        let n = data.n_rows();
        let d = data.n_cols();
        let k = self.n_classes;
        if n == 0 || d == 0 {
            return Err(MlError::InvalidData("training data is empty".to_string()));
        }
        if labels.len() != n {
            return Err(MlError::ShapeMismatch {
                expected: format!("{n} labels"),
                found: format!("{} labels", labels.len()),
            });
        }
        if labels.iter().any(|&l| l < 0.0 || l >= k as f64 || l.fract() != 0.0) {
            return Err(MlError::InvalidData(format!("labels must be integers in 0..{k}")));
        }

        data.advise(AccessPattern::Sequential);
        let mut counts = vec![0u64; k];
        let mut means = vec![0.0; k * d];
        let mut m2 = vec![0.0; k * d];

        for r in 0..n {
            let row = data.row(r);
            let class = labels[r] as usize;
            counts[class] += 1;
            let cnt = counts[class] as f64;
            let mean_row = &mut means[class * d..(class + 1) * d];
            let m2_row = &mut m2[class * d..(class + 1) * d];
            for j in 0..d {
                let delta = row[j] - mean_row[j];
                mean_row[j] += delta / cnt;
                m2_row[j] += delta * (row[j] - mean_row[j]);
            }
        }

        // Finish: variances with smoothing, log priors.
        let max_var = {
            // Global variance scale for the smoothing term.
            let mut total = 0.0;
            for c in 0..k {
                if counts[c] > 0 {
                    for j in 0..d {
                        total += m2[c * d + j] / counts[c] as f64;
                    }
                }
            }
            (total / d as f64).max(1.0)
        };
        let floor = self.var_smoothing * max_var;
        let mut variances = vec![0.0; k * d];
        for c in 0..k {
            for j in 0..d {
                let v = if counts[c] > 0 {
                    m2[c * d + j] / counts[c] as f64
                } else {
                    0.0
                };
                variances[c * d + j] = v + floor.max(1e-12);
            }
        }
        let log_priors = counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    f64::NEG_INFINITY
                } else {
                    (c as f64 / n as f64).ln()
                }
            })
            .collect();

        Ok(GaussianNb {
            log_priors,
            means,
            variances,
            n_classes: k,
            n_features: d,
        })
    }
}

impl GaussianNb {
    /// Unnormalised per-class log-posteriors of a row.
    pub fn log_scores_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        let d = self.n_features;
        (0..self.n_classes)
            .map(|c| {
                if self.log_priors[c] == f64::NEG_INFINITY {
                    return f64::NEG_INFINITY;
                }
                let mut score = self.log_priors[c];
                let means = &self.means[c * d..(c + 1) * d];
                let vars = &self.variances[c * d..(c + 1) * d];
                for j in 0..d {
                    let diff = row[j] - means[j];
                    score -= 0.5 * ((std::f64::consts::TAU * vars[j]).ln() + diff * diff / vars[j]);
                }
                score
            })
            .collect()
    }

    /// Most probable class for a row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let scores = self.log_scores_row(row);
        ops::argmax(&scores).map(|(i, _)| i as f64).unwrap_or(0.0)
    }

    /// Predicted classes for every row of `data`.
    pub fn predict<S: RowStore + ?Sized>(&self, data: &S) -> Vec<f64> {
        (0..data.n_rows()).map(|r| self.predict_row(data.row(r))).collect()
    }

    /// Classification accuracy over `data`.
    pub fn accuracy<S: RowStore + ?Sized>(&self, data: &S, labels: &[f64]) -> f64 {
        crate::metrics::accuracy(&self.predict(data), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_data::{GaussianBlobs, RowGenerator};
    use m3_linalg::DenseMatrix;

    #[test]
    fn fits_gaussian_blobs_almost_perfectly() {
        let (x, y) = GaussianBlobs::new(3, 5, 10.0, 1.0, 8).materialize(300);
        let model = GaussianNbTrainer::new(3).fit(&x, &y).unwrap();
        assert!(model.accuracy(&x, &y) > 0.95);
    }

    #[test]
    fn estimated_means_match_generating_centres() {
        let gen = GaussianBlobs::with_centers(vec![vec![0.0, 5.0], vec![10.0, -5.0]], 0.5, 3);
        let (x, y) = gen.materialize(400);
        let model = GaussianNbTrainer::new(2).fit(&x, &y).unwrap();
        for c in 0..2 {
            for j in 0..2 {
                let est = model.means[c * 2 + j];
                let truth = gen.centers()[c][j];
                assert!((est - truth).abs() < 0.2, "class {c} feature {j}: {est} vs {truth}");
            }
            // Variance should be near 0.25 (std 0.5).
            for j in 0..2 {
                let v = model.variances[c * 2 + j];
                assert!((v - 0.25).abs() < 0.1, "variance {v}");
            }
        }
        // Balanced classes → equal priors.
        assert!((model.log_priors[0] - model.log_priors[1]).abs() < 0.1);
    }

    #[test]
    fn missing_class_gets_zero_prior_and_is_never_predicted() {
        let x = DenseMatrix::from_rows(&[&[0.0], &[0.1], &[10.0], &[10.1]]).unwrap();
        let y = [0.0, 0.0, 1.0, 1.0];
        // Train with 3 classes although class 2 never appears.
        let model = GaussianNbTrainer::new(3).fit(&x, &y).unwrap();
        assert_eq!(model.log_priors[2], f64::NEG_INFINITY);
        let preds = model.predict(&x);
        assert!(preds.iter().all(|&p| p != 2.0));
        assert_eq!(preds, vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn validation_errors() {
        let x = DenseMatrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        assert!(GaussianNbTrainer::new(2).fit(&x, &[0.0]).is_err());
        assert!(GaussianNbTrainer::new(2).fit(&x, &[0.0, 5.0]).is_err());
        let empty = DenseMatrix::zeros(0, 1);
        assert!(GaussianNbTrainer::new(2).fit(&empty, &[]).is_err());
    }

    #[test]
    fn mmap_and_in_memory_agree() {
        let (x, y) = GaussianBlobs::new(2, 3, 5.0, 1.0, 21).materialize(100);
        let dir = tempfile::tempdir().unwrap();
        let mapped = m3_core::alloc::persist_matrix(dir.path().join("nb.m3"), &x).unwrap();
        let a = GaussianNbTrainer::new(2).fit(&x, &y).unwrap();
        let b = GaussianNbTrainer::new(2).fit(&mapped, &y).unwrap();
        assert!(ops::approx_eq(&a.means, &b.means, 1e-12));
        assert!(ops::approx_eq(&a.variances, &b.variances, 1e-12));
    }
}
