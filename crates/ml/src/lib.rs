//! # m3-ml — machine-learning algorithms over in-memory *or* memory-mapped data
//!
//! This crate plays the role mlpack plays in the M3 paper: it implements the
//! algorithms the evaluation runs — **logistic regression trained with
//! L-BFGS** and **k-means** — plus the supporting models a practitioner would
//! expect (multinomial softmax regression, linear/ridge regression, Gaussian
//! naive Bayes, mini-batch k-means) and the usual metrics and preprocessing.
//!
//! Every algorithm implements the [`api::Estimator`] (or
//! [`api::UnsupervisedEstimator`]) trait and is generic over
//! [`m3_core::RowStore`], the storage trait implemented by both
//! `m3_linalg::DenseMatrix` (in-memory) and `m3_core::MmapMatrix` /
//! `m3_core::Dataset` (memory-mapped).  That is the entire point of M3: the
//! training code below never knows whether its rows live in RAM or on disk,
//! so switching a workload to out-of-core data is the one-line change shown
//! in the paper's Table 1.  Execution policy — threads, chunk size,
//! `madvise` hints, tracing — comes from a shared [`m3_core::ExecContext`]
//! rather than per-model knobs, so swapping the execution backend is equally
//! a one-line change.
//!
//! Sparse data gets the same treatment: logistic, softmax and linear
//! regression also implement [`api::SparseEstimator`], training over any
//! [`m3_core::SparseRowStore`] — the in-memory `m3_linalg::CsrMatrix` or
//! the memory-mapped `m3_core::CsrFile` — through the context's sparse
//! sweep drivers, producing the *same* model types as the dense paths.
//!
//! ## Example: logistic regression over a memory-mapped file
//!
//! ```
//! use m3_core::{ExecContext, storage::RowStore};
//! use m3_data::{LinearProblem, RowGenerator, writer::write_dataset};
//! use m3_ml::api::{Estimator, Model};
//! use m3_ml::logistic::{LogisticRegression, LogisticConfig};
//!
//! // Build a small on-disk dataset.
//! let dir = tempfile::tempdir().unwrap();
//! let path = dir.path().join("train.m3ds");
//! let problem = LinearProblem::random_classification(8, 0.05, 42);
//! write_dataset(&problem, &path, 500).unwrap();
//!
//! // Memory-map it and train exactly as if it were in memory.
//! let dataset = m3_core::Dataset::open(&path).unwrap();
//! let labels = dataset.labels().unwrap().to_vec();
//! let trainer = LogisticRegression::new(LogisticConfig::default());
//! let model = Estimator::fit(&trainer, &dataset, &labels, &ExecContext::new()).unwrap();
//! assert!(model.score(&dataset, &labels) > 0.9);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod cross_validation;
pub mod kmeans;
pub mod linear_regression;
pub mod logistic;
pub mod metrics;
pub mod naive_bayes;
pub mod persist;
pub mod preprocess;
pub mod softmax;
pub mod solver;

pub use api::{
    BatchPredict, Estimator, Fit, Model, SparseEstimator, SparsePredictor, UnsupervisedEstimator,
};
pub use kmeans::{KMeans, KMeansConfig, KMeansInit, KMeansModel};
pub use linear_regression::{LinearModel, LinearRegression, LinearRegressionConfig};
pub use logistic::{LogisticConfig, LogisticModel, LogisticRegression};
pub use naive_bayes::{GaussianNb, GaussianNbTrainer};
pub use persist::{load_model, load_model_verified};
pub use preprocess::{StandardScaler, Standardizer};
pub use softmax::{SoftmaxConfig, SoftmaxModel, SoftmaxRegression};
pub use solver::Solver;

/// Errors produced by model training and prediction.
#[derive(Debug)]
pub enum MlError {
    /// Labels and data disagree on the number of examples, or a prediction
    /// input has the wrong number of features.
    ShapeMismatch {
        /// Description of what was expected.
        expected: String,
        /// Description of what was found.
        found: String,
    },
    /// The training data was empty or otherwise unusable.
    InvalidData(String),
    /// The underlying optimiser failed (e.g. produced non-finite values).
    OptimizationFailed(String),
    /// The SGD driver reported a typed error: divergence, a checkpoint I/O
    /// failure, or a resume/configuration mismatch.
    Optim(m3_optim::OptimError),
    /// Reading or writing a model artifact failed (I/O, header validation,
    /// or a kind/shape mismatch between the artifact and the model type).
    Artifact(m3_core::CoreError),
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
            MlError::InvalidData(msg) => write!(f, "invalid training data: {msg}"),
            MlError::OptimizationFailed(msg) => write!(f, "optimisation failed: {msg}"),
            MlError::Optim(e) => write!(f, "optimiser error: {e}"),
            MlError::Artifact(e) => write!(f, "model artifact error: {e}"),
        }
    }
}

impl std::error::Error for MlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MlError::Optim(e) => Some(e),
            MlError::Artifact(e) => Some(e),
            _ => None,
        }
    }
}

impl From<m3_core::CoreError> for MlError {
    fn from(e: m3_core::CoreError) -> Self {
        MlError::Artifact(e)
    }
}

impl From<m3_optim::OptimError> for MlError {
    fn from(e: m3_optim::OptimError) -> Self {
        MlError::Optim(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MlError>;

/// Shared training-parallelism setting: how many worker threads data sweeps
/// use.  `0` means "use every available hardware thread".
#[deprecated(
    since = "0.1.0",
    note = "execution policy now lives in `m3_core::ExecContext` (see `ExecContext::resolve_threads`)"
)]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        m3_linalg::parallel::default_threads()
    } else {
        requested
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = MlError::ShapeMismatch {
            expected: "100 labels".into(),
            found: "99 labels".into(),
        };
        assert!(e.to_string().contains("100 labels"));
        assert!(MlError::InvalidData("empty".into())
            .to_string()
            .contains("empty"));
        assert!(MlError::OptimizationFailed("nan".into())
            .to_string()
            .contains("nan"));
    }

    #[test]
    #[allow(deprecated)]
    fn resolve_threads_zero_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
