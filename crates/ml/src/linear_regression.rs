//! Linear (ridge) regression.
//!
//! Two training paths are provided:
//!
//! * the **normal equations** (`(XᵀX + λI) w = Xᵀy`), built from a single
//!   sequential sweep that accumulates the Gram matrix — cheap when the
//!   feature count is modest (784 for Infimnist) regardless of how many rows
//!   stream through, and therefore a natural extra workload for M3;
//! * **gradient descent** on the least-squares objective, for feature counts
//!   where a dense `d × d` Gram matrix is unreasonable.
//!
//! Both paths sweep the data through the shared [`ExecContext`].

use m3_core::chunked::RowChunk;
use m3_core::sparse::{SparseRowChunk, SparseRowStore};
use m3_core::storage::RowStore;
use m3_core::{ExecContext, ParamVec};
use m3_linalg::{blas, kernels, ops, DenseMatrix};
use m3_optim::function::{DifferentiableFunction, StochasticFunction};
use m3_optim::gd::GradientDescent;
use m3_optim::termination::TerminationCriteria;
use m3_optim::AsyncSgd;

use crate::api::{Estimator, Model, SparseEstimator};
use crate::{MlError, Result};

/// How the coefficients are computed.
#[derive(Debug, Clone, PartialEq)]
pub enum Solver {
    /// Closed-form ridge solution via Cholesky on the Gram matrix.
    NormalEquations,
    /// Iterative minimisation of the least-squares objective.
    GradientDescent,
    /// Mini-batch SGD with the given [`AsyncSgd`] configuration (see
    /// [`crate::solver::Solver`] for the determinism contract).
    Sgd(AsyncSgd),
}

/// Hyper-parameters for [`LinearRegression`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinearRegressionConfig {
    /// Ridge (L2) regularisation strength.
    pub l2: f64,
    /// Training algorithm.
    pub solver: Solver,
    /// Iteration cap for the gradient-descent solver.
    pub max_iterations: usize,
    /// Legacy worker-thread count (`0` = all hardware threads), honoured only
    /// by the deprecated inherent [`LinearRegression::fit`] shim.
    pub n_threads: usize,
}

impl Default for LinearRegressionConfig {
    fn default() -> Self {
        Self {
            l2: 1e-8,
            solver: Solver::NormalEquations,
            max_iterations: 500,
            n_threads: 0,
        }
    }
}

/// Linear-regression trainer.
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    config: LinearRegressionConfig,
}

/// A fitted linear model `y ≈ w·x + b`.
///
/// The coefficients live in a [`ParamVec`]: owned after training, or a
/// zero-copy view into a memory-mapped artifact after [`LinearModel::load`].
#[derive(Debug, Clone)]
pub struct LinearModel {
    /// Feature coefficients.
    pub weights: ParamVec,
    /// Intercept.
    pub bias: f64,
}

/// Mean-squared-error objective used by the gradient-descent solver.
struct LeastSquaresLoss<'a, S: RowStore + Sync + ?Sized> {
    data: &'a S,
    targets: &'a [f64],
    l2: f64,
    ctx: &'a ExecContext,
}

impl<S: RowStore + Sync + ?Sized> DifferentiableFunction for LeastSquaresLoss<'_, S> {
    fn dimension(&self) -> usize {
        self.data.n_cols() + 1
    }

    fn value(&self, w: &[f64]) -> f64 {
        let mut grad = vec![0.0; w.len()];
        self.value_and_gradient(w, &mut grad)
    }

    fn gradient(&self, w: &[f64], grad: &mut [f64]) {
        self.value_and_gradient(w, grad);
    }

    fn value_and_gradient(&self, w: &[f64], grad: &mut [f64]) -> f64 {
        let n = self.data.n_rows();
        let d = self.data.n_cols();
        if n == 0 {
            grad.fill(0.0);
            return 0.0;
        }
        let (loss, partial) = self.ctx.map_reduce_rows(
            self.data,
            |chunk| {
                let mut g = vec![0.0; d + 1];
                let mut acc = 0.0;
                for (i, row) in chunk.data.chunks_exact(d).enumerate() {
                    let target = self.targets[chunk.start_row + i];
                    let residual = ops::dot(&w[..d], row) + w[d] - target;
                    acc += residual * residual;
                    ops::axpy(2.0 * residual, row, &mut g[..d]);
                    g[d] += 2.0 * residual;
                }
                (acc, g)
            },
            (0.0, vec![0.0; d + 1]),
            |(la, mut ga), (lb, gb)| {
                ops::add_assign(&mut ga, &gb);
                (la + lb, ga)
            },
        );
        let inv = 1.0 / n as f64;
        for (gi, pi) in grad.iter_mut().zip(&partial) {
            *gi = pi * inv;
        }
        ops::axpy(self.l2, &w[..d], &mut grad[..d]);
        loss * inv + 0.5 * self.l2 * ops::dot(&w[..d], &w[..d])
    }
}

impl<S: RowStore + Sync + ?Sized> StochasticFunction for LeastSquaresLoss<'_, S> {
    fn n_examples(&self) -> usize {
        self.data.n_rows()
    }

    fn batch_value_and_gradient(&self, w: &[f64], examples: &[usize], grad: &mut [f64]) -> f64 {
        let d = self.data.n_cols();
        grad.fill(0.0);
        if examples.is_empty() {
            return 0.0;
        }
        let mut loss = 0.0;
        for &i in examples {
            let row = self.data.row(i);
            let residual = ops::dot(&w[..d], row) + w[d] - self.targets[i];
            loss += residual * residual;
            ops::axpy(2.0 * residual, row, &mut grad[..d]);
            grad[d] += 2.0 * residual;
        }
        let inv = 1.0 / examples.len() as f64;
        ops::scale(inv, grad);
        ops::axpy(self.l2, &w[..d], &mut grad[..d]);
        loss * inv + 0.5 * self.l2 * ops::dot(&w[..d], &w[..d])
    }

    fn batch_range_value_and_gradient(
        &self,
        w: &[f64],
        examples: std::ops::Range<usize>,
        grad: &mut [f64],
    ) -> f64 {
        let d = self.data.n_cols();
        grad.fill(0.0);
        if examples.is_empty() {
            return 0.0;
        }
        let rows = self.data.rows_slice(examples.start, examples.end);
        let targets = &self.targets[examples.clone()];
        let loss = crate::solver::with_scores(|residuals| {
            kernels::linear_grad_chunk(rows, &w[..d], w[d], targets, residuals, grad)
        });
        let inv = 1.0 / examples.len() as f64;
        ops::scale(inv, grad);
        ops::axpy(self.l2, &w[..d], &mut grad[..d]);
        loss * inv + 0.5 * self.l2 * ops::dot(&w[..d], &w[..d])
    }
}

/// Mean-squared-error objective over a [`SparseRowStore`], used by the
/// sparse gradient-descent solver.
struct SparseLeastSquaresLoss<'a, S: SparseRowStore + Sync + ?Sized> {
    data: &'a S,
    targets: &'a [f64],
    l2: f64,
    ctx: &'a ExecContext,
}

impl<S: SparseRowStore + Sync + ?Sized> DifferentiableFunction for SparseLeastSquaresLoss<'_, S> {
    fn dimension(&self) -> usize {
        self.data.n_cols() + 1
    }

    fn value(&self, w: &[f64]) -> f64 {
        let mut grad = vec![0.0; w.len()];
        self.value_and_gradient(w, &mut grad)
    }

    fn gradient(&self, w: &[f64], grad: &mut [f64]) {
        self.value_and_gradient(w, grad);
    }

    fn value_and_gradient(&self, w: &[f64], grad: &mut [f64]) -> f64 {
        let n = self.data.n_rows();
        let d = self.data.n_cols();
        if n == 0 {
            grad.fill(0.0);
            return 0.0;
        }
        let (loss, partial) = self.ctx.map_reduce_sparse_rows(
            self.data,
            |chunk| {
                let mut g = vec![0.0; d + 1];
                let mut acc = 0.0;
                for (r, indices, values) in chunk.rows_with_index() {
                    let target = self.targets[r];
                    let residual = kernels::sparse_dot(indices, values, &w[..d]) + w[d] - target;
                    acc += residual * residual;
                    kernels::scatter_axpy(2.0 * residual, indices, values, &mut g[..d]);
                    g[d] += 2.0 * residual;
                }
                (acc, g)
            },
            (0.0, vec![0.0; d + 1]),
            |(la, mut ga), (lb, gb)| {
                ops::add_assign(&mut ga, &gb);
                (la + lb, ga)
            },
        );
        let inv = 1.0 / n as f64;
        for (gi, pi) in grad.iter_mut().zip(&partial) {
            *gi = pi * inv;
        }
        ops::axpy(self.l2, &w[..d], &mut grad[..d]);
        loss * inv + 0.5 * self.l2 * ops::dot(&w[..d], &w[..d])
    }
}

impl<S: SparseRowStore + Sync + ?Sized> StochasticFunction for SparseLeastSquaresLoss<'_, S> {
    fn n_examples(&self) -> usize {
        self.data.n_rows()
    }

    fn batch_value_and_gradient(&self, w: &[f64], examples: &[usize], grad: &mut [f64]) -> f64 {
        let d = self.data.n_cols();
        grad.fill(0.0);
        if examples.is_empty() {
            return 0.0;
        }
        let indptr = self.data.indptr();
        let col_indices = self.data.indices();
        let vals = self.data.values();
        let mut loss = 0.0;
        for &i in examples {
            let (lo, hi) = (indptr[i] as usize, indptr[i + 1] as usize);
            let (row_idx, row_vals) = (&col_indices[lo..hi], &vals[lo..hi]);
            let residual = kernels::sparse_dot(row_idx, row_vals, &w[..d]) + w[d] - self.targets[i];
            loss += residual * residual;
            kernels::scatter_axpy(2.0 * residual, row_idx, row_vals, &mut grad[..d]);
            grad[d] += 2.0 * residual;
        }
        let inv = 1.0 / examples.len() as f64;
        ops::scale(inv, grad);
        ops::axpy(self.l2, &w[..d], &mut grad[..d]);
        loss * inv + 0.5 * self.l2 * ops::dot(&w[..d], &w[..d])
    }

    fn batch_range_value_and_gradient(
        &self,
        w: &[f64],
        examples: std::ops::Range<usize>,
        grad: &mut [f64],
    ) -> f64 {
        let d = self.data.n_cols();
        grad.fill(0.0);
        if examples.is_empty() {
            return 0.0;
        }
        let chunk = self.data.sparse_chunk(examples.start, examples.end);
        let mut loss = 0.0;
        for (r, row_idx, row_vals) in chunk.rows_with_index() {
            let residual = kernels::sparse_dot(row_idx, row_vals, &w[..d]) + w[d] - self.targets[r];
            loss += residual * residual;
            kernels::scatter_axpy(2.0 * residual, row_idx, row_vals, &mut grad[..d]);
            grad[d] += 2.0 * residual;
        }
        let inv = 1.0 / chunk.n_rows() as f64;
        ops::scale(inv, grad);
        ops::axpy(self.l2, &w[..d], &mut grad[..d]);
        loss * inv + 0.5 * self.l2 * ops::dot(&w[..d], &w[..d])
    }
}

impl LinearRegression {
    /// Create a trainer with the given configuration.
    pub fn new(config: LinearRegressionConfig) -> Self {
        Self { config }
    }

    /// Fit `targets ≈ X·w + b`.
    ///
    /// # Errors
    /// Fails on shape mismatches, empty data, or a singular normal-equation
    /// system that even ridge regularisation cannot repair.
    #[deprecated(
        since = "0.1.0",
        note = "use `Estimator::fit(&self, data, targets, &ExecContext)` instead"
    )]
    pub fn fit<S: RowStore + Sync + ?Sized>(
        &self,
        data: &S,
        targets: &[f64],
    ) -> Result<LinearModel> {
        Estimator::fit(
            self,
            data,
            targets,
            &ExecContext::new().with_threads(self.config.n_threads),
        )
    }

    fn fit_normal_equations<S: RowStore + Sync + ?Sized>(
        &self,
        data: &S,
        targets: &[f64],
        ctx: &ExecContext,
    ) -> Result<LinearModel> {
        let d = data.n_cols();
        let n = data.n_rows();

        // One sequential chunked sweep (the accumulation is order-dependent,
        // so this uses the context's sequential driver): the d×d block of
        // XᵀX goes through the dispatched Gram kernel, while the bias
        // row/column (column sums), Xᵀy and Σy accumulate alongside.
        let mut gtg = vec![0.0; d * d];
        let mut col_sums = vec![0.0; d];
        let mut xty = vec![0.0; d];
        let mut y_sum = 0.0;
        ctx.for_each_chunk(data, |chunk| {
            kernels::gram_into(chunk.data, chunk.n_rows(), d, &mut gtg);
            for (r, row) in chunk.rows_with_index() {
                let y = targets[r];
                ops::add_assign(&mut col_sums, row);
                ops::axpy(y, row, &mut xty);
                y_sum += y;
            }
        });
        self.solve_normal_system(d, n, gtg, col_sums, xty, y_sum)
    }

    /// Sparse normal equations: the same accumulators as the dense sweep,
    /// but each row contributes only its stored entries — the Gram update is
    /// the O(k²) outer product of the row's nnz, and the bias/Xᵀy terms are
    /// scatters.
    fn fit_normal_equations_sparse<S: SparseRowStore + Sync + ?Sized>(
        &self,
        data: &S,
        targets: &[f64],
        ctx: &ExecContext,
    ) -> Result<LinearModel> {
        let d = data.n_cols();
        let n = data.n_rows();

        let mut gtg = vec![0.0; d * d];
        let mut col_sums = vec![0.0; d];
        let mut xty = vec![0.0; d];
        let mut y_sum = 0.0;
        ctx.for_each_sparse_chunk(data, |chunk| {
            for (r, indices, values) in chunk.rows_with_index() {
                let y = targets[r];
                for (&ci, &vi) in indices.iter().zip(values) {
                    kernels::scatter_axpy(vi, indices, values, {
                        let row = ci as usize * d;
                        &mut gtg[row..row + d]
                    });
                }
                kernels::scatter_axpy(1.0, indices, values, &mut col_sums);
                kernels::scatter_axpy(y, indices, values, &mut xty);
                y_sum += y;
            }
        });
        self.solve_normal_system(d, n, gtg, col_sums, xty, y_sum)
    }

    /// Assemble and solve the augmented `[X | 1]` ridge system from the
    /// sweep accumulators — shared by the dense and sparse paths.
    fn solve_normal_system(
        &self,
        d: usize,
        n: usize,
        gtg: Vec<f64>,
        col_sums: Vec<f64>,
        xty: Vec<f64>,
        y_sum: f64,
    ) -> Result<LinearModel> {
        // Assemble the augmented [X | 1] system: (d+1)×(d+1) Gram and rhs.
        let mut gram = DenseMatrix::zeros(d + 1, d + 1);
        for i in 0..d {
            let g_row = gram.row_mut(i);
            g_row[..d].copy_from_slice(&gtg[i * d..(i + 1) * d]);
            g_row[d] = col_sums[i];
        }
        let last = gram.row_mut(d);
        last[..d].copy_from_slice(&col_sums);
        last[d] = n as f64;
        let mut rhs = vec![0.0; d + 1];
        rhs[..d].copy_from_slice(&xty);
        rhs[d] = y_sum;

        // Ridge on the weights (not the intercept).
        for i in 0..d {
            let v = gram.get(i, i) + self.config.l2 * n as f64;
            gram.set(i, i, v);
        }
        let solution = blas::cholesky_solve(&gram, &rhs).ok_or_else(|| {
            MlError::OptimizationFailed("normal-equation system is not positive definite".into())
        })?;
        Ok(LinearModel {
            weights: solution[..d].to_vec().into(),
            bias: solution[d],
        })
    }

    fn fit_gradient_descent<S: RowStore + Sync + ?Sized>(
        &self,
        data: &S,
        targets: &[f64],
        ctx: &ExecContext,
    ) -> Result<LinearModel> {
        let loss = LeastSquaresLoss {
            data,
            targets,
            l2: self.config.l2,
            ctx,
        };
        self.run_gradient_descent(&loss, data.n_cols())
    }

    fn fit_gradient_descent_sparse<S: SparseRowStore + Sync + ?Sized>(
        &self,
        data: &S,
        targets: &[f64],
        ctx: &ExecContext,
    ) -> Result<LinearModel> {
        let loss = SparseLeastSquaresLoss {
            data,
            targets,
            l2: self.config.l2,
            ctx,
        };
        self.run_gradient_descent(&loss, data.n_cols())
    }

    fn fit_sgd<S: RowStore + Sync + ?Sized>(
        &self,
        data: &S,
        targets: &[f64],
        sgd: &AsyncSgd,
        ctx: &ExecContext,
    ) -> Result<LinearModel> {
        let loss = LeastSquaresLoss {
            data,
            targets,
            l2: self.config.l2,
            ctx,
        };
        let d = data.n_cols();
        let result = crate::solver::run_sgd(sgd, &loss, d + 1, ctx)?;
        Ok(LinearModel {
            weights: result.weights[..d].to_vec().into(),
            bias: result.weights[d],
        })
    }

    fn fit_sgd_sparse<S: SparseRowStore + Sync + ?Sized>(
        &self,
        data: &S,
        targets: &[f64],
        sgd: &AsyncSgd,
        ctx: &ExecContext,
    ) -> Result<LinearModel> {
        let loss = SparseLeastSquaresLoss {
            data,
            targets,
            l2: self.config.l2,
            ctx,
        };
        let d = data.n_cols();
        let result = crate::solver::run_sgd(sgd, &loss, d + 1, ctx)?;
        Ok(LinearModel {
            weights: result.weights[..d].to_vec().into(),
            bias: result.weights[d],
        })
    }

    /// Run the iterative solver on any least-squares objective of `d + 1`
    /// parameters — shared by the dense and sparse paths.
    fn run_gradient_descent(
        &self,
        loss: &impl DifferentiableFunction,
        d: usize,
    ) -> Result<LinearModel> {
        let result = GradientDescent::new()
            .criteria(TerminationCriteria {
                max_iterations: self.config.max_iterations,
                ..Default::default()
            })
            .run(loss, vec![0.0; d + 1]);
        if result.weights.iter().any(|w| !w.is_finite()) {
            return Err(MlError::OptimizationFailed(format!(
                "gradient descent terminated with {:?}",
                result.reason
            )));
        }
        Ok(LinearModel {
            weights: result.weights[..d].to_vec().into(),
            bias: result.weights[d],
        })
    }

    /// Shared validation for the dense and sparse fit paths.
    fn validate(n_rows: usize, n_cols: usize, targets: &[f64]) -> Result<()> {
        if n_rows == 0 || n_cols == 0 {
            return Err(MlError::InvalidData("training data is empty".to_string()));
        }
        if n_rows != targets.len() {
            return Err(MlError::ShapeMismatch {
                expected: format!("{n_rows} targets"),
                found: format!("{} targets", targets.len()),
            });
        }
        Ok(())
    }
}

impl Estimator for LinearRegression {
    type Model = LinearModel;

    fn fit<S: RowStore + Sync + ?Sized>(
        &self,
        data: &S,
        targets: &[f64],
        ctx: &ExecContext,
    ) -> Result<LinearModel> {
        Self::validate(data.n_rows(), data.n_cols(), targets)?;
        match &self.config.solver {
            Solver::NormalEquations => self.fit_normal_equations(data, targets, ctx),
            Solver::GradientDescent => self.fit_gradient_descent(data, targets, ctx),
            Solver::Sgd(sgd) => self.fit_sgd(data, targets, sgd, ctx),
        }
    }
}

impl SparseEstimator for LinearRegression {
    fn fit_sparse<S: SparseRowStore + Sync + ?Sized>(
        &self,
        data: &S,
        targets: &[f64],
        ctx: &ExecContext,
    ) -> Result<LinearModel> {
        Self::validate(data.n_rows(), data.n_cols(), targets)?;
        match &self.config.solver {
            Solver::NormalEquations => self.fit_normal_equations_sparse(data, targets, ctx),
            Solver::GradientDescent => self.fit_gradient_descent_sparse(data, targets, ctx),
            Solver::Sgd(sgd) => self.fit_sgd_sparse(data, targets, sgd, ctx),
        }
    }
}

impl LinearModel {
    /// Predict the target of a single row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature count mismatch");
        ops::dot(row, &self.weights) + self.bias
    }

    /// Predict the targets of every row of `data`.
    pub fn predict<S: RowStore + ?Sized>(&self, data: &S) -> Vec<f64> {
        (0..data.n_rows())
            .map(|r| self.predict_row(data.row(r)))
            .collect()
    }

    /// R² of the model on `data` / `targets`.
    pub fn r2<S: RowStore + ?Sized>(&self, data: &S, targets: &[f64]) -> f64 {
        crate::metrics::r2_score(&self.predict(data), targets)
    }
}

impl Model for LinearModel {
    fn n_features(&self) -> usize {
        self.weights.len()
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        LinearModel::predict_row(self, row)
    }

    /// Fused chunk kernel: one gemv over the chunk, then the bias shift.
    fn predict_chunk(&self, chunk: RowChunk<'_>, out: &mut Vec<f64>) {
        let start = out.len();
        out.resize(start + chunk.n_rows(), 0.0);
        kernels::linear_predict_chunk(chunk.data, &self.weights, self.bias, &mut out[start..]);
    }

    /// R² over `data` / `labels` (higher is better).
    fn score(&self, data: &dyn RowStore, labels: &[f64]) -> f64 {
        self.r2(data, labels)
    }
}

impl crate::api::SparsePredictor for LinearModel {
    fn predict_sparse_chunk(&self, chunk: SparseRowChunk<'_>, out: &mut Vec<f64>) {
        let start = out.len();
        out.resize(start + chunk.n_rows(), 0.0);
        kernels::linear_predict_chunk_csr(
            chunk.indptr,
            chunk.indices,
            chunk.values,
            &self.weights,
            self.bias,
            &mut out[start..],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_data::{LinearProblem, RowGenerator};

    fn problem(n: usize, noise: f64) -> (DenseMatrix, Vec<f64>) {
        LinearProblem::regression(vec![2.0, -1.0, 0.5], 3.0, noise, 17).materialize(n)
    }

    fn fit(trainer: &LinearRegression, x: &DenseMatrix, y: &[f64]) -> LinearModel {
        Estimator::fit(trainer, x, y, &ExecContext::new()).unwrap()
    }

    #[test]
    fn normal_equations_recover_exact_coefficients_without_noise() {
        let (x, y) = problem(200, 0.0);
        let model = fit(&LinearRegression::default(), &x, &y);
        assert!((model.weights[0] - 2.0).abs() < 1e-6);
        assert!((model.weights[1] + 1.0).abs() < 1e-6);
        assert!((model.weights[2] - 0.5).abs() < 1e-6);
        assert!((model.bias - 3.0).abs() < 1e-6);
        assert!(model.r2(&x, &y) > 0.999999);
    }

    #[test]
    fn gradient_descent_agrees_with_normal_equations() {
        let (x, y) = problem(300, 0.05);
        let ne = fit(&LinearRegression::default(), &x, &y);
        let gd = fit(
            &LinearRegression::new(LinearRegressionConfig {
                solver: Solver::GradientDescent,
                max_iterations: 2000,
                ..Default::default()
            }),
            &x,
            &y,
        );
        for (a, b) in ne.weights.iter().zip(&gd.weights) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
        assert!((ne.bias - gd.bias).abs() < 0.05);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let (x, y) = problem(100, 0.1);
        let small = fit(
            &LinearRegression::new(LinearRegressionConfig {
                l2: 1e-8,
                ..Default::default()
            }),
            &x,
            &y,
        );
        let large = fit(
            &LinearRegression::new(LinearRegressionConfig {
                l2: 100.0,
                ..Default::default()
            }),
            &x,
            &y,
        );
        let norm_small = m3_linalg::norm::l2(&small.weights);
        let norm_large = m3_linalg::norm::l2(&large.weights);
        assert!(norm_large < norm_small);
    }

    #[test]
    fn mmap_and_in_memory_agree() {
        let (x, y) = problem(150, 0.02);
        let dir = tempfile::tempdir().unwrap();
        let mapped = m3_core::alloc::persist_matrix(dir.path().join("lr.m3"), &x).unwrap();
        let trainer = LinearRegression::default();
        let ctx = ExecContext::new();
        let a = Estimator::fit(&trainer, &x, &y, &ctx).unwrap();
        let b = Estimator::fit(&trainer, &mapped, &y, &ctx).unwrap();
        for (wa, wb) in a.weights.iter().zip(&b.weights) {
            assert_eq!(wa.to_bits(), wb.to_bits());
        }
        assert_eq!(a.bias.to_bits(), b.bias.to_bits());
    }

    /// The regression problem with most entries zeroed, as CSR + dense twin.
    fn sparse_problem(n: usize) -> (m3_linalg::CsrMatrix, DenseMatrix, Vec<f64>) {
        let (x, y) = problem(n, 0.05);
        let mut data = x.as_slice().to_vec();
        for (i, v) in data.iter_mut().enumerate() {
            if (i * 2654435761) % 3 == 1 {
                *v = 0.0;
            }
        }
        let dense = DenseMatrix::from_vec(data, x.n_rows(), x.n_cols()).unwrap();
        (m3_linalg::CsrMatrix::from_dense(&dense), dense, y)
    }

    #[test]
    fn sparse_fit_agrees_with_dense_fit_for_both_solvers() {
        let (csr, dense, y) = sparse_problem(250);
        let ctx = ExecContext::new();
        for solver in [Solver::NormalEquations, Solver::GradientDescent] {
            let trainer = LinearRegression::new(LinearRegressionConfig {
                solver: solver.clone(),
                max_iterations: 800,
                ..Default::default()
            });
            let on_dense = Estimator::fit(&trainer, &dense, &y, &ctx).unwrap();
            let on_sparse = trainer.fit_sparse(&csr, &y, &ctx).unwrap();
            for (a, b) in on_dense.weights.iter().zip(&on_sparse.weights) {
                assert!((a - b).abs() < 1e-6, "{solver:?}: {a} vs {b}");
            }
            assert!((on_dense.bias - on_sparse.bias).abs() < 1e-6);
        }
    }

    #[test]
    fn sparse_fit_is_bit_identical_across_backings() {
        let (csr, _, y) = sparse_problem(180);
        let dir = tempfile::tempdir().unwrap();
        let mapped = m3_core::sparse::persist_csr(dir.path().join("lr.m3csr"), &csr, None).unwrap();
        let trainer = LinearRegression::default();
        let ctx = ExecContext::new();
        let a = trainer.fit_sparse(&csr, &y, &ctx).unwrap();
        let b = trainer.fit_sparse(&mapped, &y, &ctx).unwrap();
        for (wa, wb) in a.weights.iter().zip(&b.weights) {
            assert_eq!(wa.to_bits(), wb.to_bits());
        }
        assert_eq!(a.bias.to_bits(), b.bias.to_bits());
    }

    #[test]
    fn sparse_fit_validation_errors() {
        let (csr, _, y) = sparse_problem(10);
        let ctx = ExecContext::new();
        assert!(LinearRegression::default()
            .fit_sparse(&csr, &y[..4], &ctx)
            .is_err());
        let empty = m3_linalg::CsrBuilder::new(2).finish();
        assert!(LinearRegression::default()
            .fit_sparse(&empty, &[], &ctx)
            .is_err());
    }

    #[test]
    fn deprecated_inherent_fit_matches_trait_fit() {
        let (x, y) = problem(80, 0.01);
        let trainer = LinearRegression::default();
        #[allow(deprecated)]
        let old = LinearRegression::fit(&trainer, &x, &y).unwrap();
        let new = fit(&trainer, &x, &y);
        assert!(ops::approx_eq(&old.weights, &new.weights, 1e-12));
        assert!((old.bias - new.bias).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let (x, y) = problem(10, 0.0);
        let ctx = ExecContext::new();
        assert!(Estimator::fit(&LinearRegression::default(), &x, &y[..5], &ctx).is_err());
        let empty = DenseMatrix::zeros(0, 2);
        assert!(Estimator::fit(&LinearRegression::default(), &empty, &[], &ctx).is_err());
    }

    #[test]
    fn predictions_are_linear_in_inputs() {
        let model = LinearModel {
            weights: vec![1.0, 2.0].into(),
            bias: -1.0,
        };
        assert_eq!(model.predict_row(&[3.0, 4.0]), 10.0);
        let m = DenseMatrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).unwrap();
        assert_eq!(model.predict(&m), vec![0.0, 1.0]);
        // The Model-trait view: score is R².
        let y = vec![0.0, 1.0];
        assert!((Model::score(&model, &m, &y) - model.r2(&m, &y)).abs() < 1e-12);
    }

    #[test]
    fn sgd_solver_approximates_the_normal_equations() {
        let (x, y) = problem(400, 0.05);
        let ne = fit(&LinearRegression::default(), &x, &y);
        let sgd = fit(
            &LinearRegression::new(LinearRegressionConfig {
                solver: Solver::Sgd(
                    AsyncSgd::new()
                        .learning_rate(0.05)
                        .epochs(80)
                        .batch_size(32)
                        .seed(5),
                ),
                ..Default::default()
            }),
            &x,
            &y,
        );
        for (a, b) in ne.weights.iter().zip(&sgd.weights) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
        assert!((ne.bias - sgd.bias).abs() < 0.05);
    }

    #[test]
    fn sparse_sgd_fit_tracks_the_dense_sgd_fit() {
        let (csr, dense, y) = sparse_problem(300);
        let trainer = LinearRegression::new(LinearRegressionConfig {
            solver: Solver::Sgd(
                AsyncSgd::new()
                    .learning_rate(0.05)
                    .epochs(60)
                    .batch_size(32)
                    .seed(11),
            ),
            ..Default::default()
        });
        let ctx = ExecContext::new().with_threads(2);
        let on_dense = Estimator::fit(&trainer, &dense, &y, &ctx).unwrap();
        let on_sparse = trainer.fit_sparse(&csr, &y, &ctx).unwrap();
        // Deterministic SGD runs the same batch schedule on both layouts.
        for (a, b) in on_dense.weights.iter().zip(&on_sparse.weights) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        }
        assert!((on_dense.bias - on_sparse.bias).abs() <= 1e-9);
    }
}
