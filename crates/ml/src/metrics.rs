//! Evaluation metrics for classification, regression and clustering.

/// Fraction of predictions equal to the true label.
///
/// # Panics
/// Panics when the slices have different lengths.
pub fn accuracy(predictions: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| (**p - **l).abs() < 0.5)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Confusion matrix for integer class labels `0..n_classes`.
/// Entry `(i, j)` counts examples with true class `i` predicted as class `j`.
pub fn confusion_matrix(predictions: &[f64], labels: &[f64], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (p, l) in predictions.iter().zip(labels) {
        let pi = (*p as usize).min(n_classes - 1);
        let li = (*l as usize).min(n_classes - 1);
        m[li][pi] += 1;
    }
    m
}

/// Precision and recall of the positive class (label `1`) in a binary task.
/// Returns `(precision, recall)`; each is `0.0` when undefined.
pub fn precision_recall(predictions: &[f64], labels: &[f64]) -> (f64, f64) {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fn_ = 0.0;
    for (&p, &l) in predictions.iter().zip(labels) {
        let p = p >= 0.5;
        let l = l >= 0.5;
        match (p, l) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, true) => fn_ += 1.0,
            (false, false) => {}
        }
    }
    let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
    let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
    (precision, recall)
}

/// F1 score (harmonic mean of precision and recall); `0.0` when undefined.
pub fn f1_score(predictions: &[f64], labels: &[f64]) -> f64 {
    let (p, r) = precision_recall(predictions, labels);
    if p + r > 0.0 {
        2.0 * p * r / (p + r)
    } else {
        0.0
    }
}

/// Mean squared error between predictions and targets.
pub fn mean_squared_error(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).powi(2))
        .sum::<f64>()
        / predictions.len() as f64
}

/// Coefficient of determination R².  Returns `0.0` when the targets have zero
/// variance.
pub fn r2_score(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if targets.is_empty() {
        return 0.0;
    }
    let mean = targets.iter().sum::<f64>() / targets.len() as f64;
    let ss_tot: f64 = targets.iter().map(|t| (t - mean).powi(2)).sum();
    if ss_tot == 0.0 {
        return 0.0;
    }
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (t - p).powi(2))
        .sum();
    1.0 - ss_res / ss_tot
}

/// Binary cross-entropy (log loss) for probabilities in `(0, 1)`.
pub fn log_loss(probabilities: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(probabilities.len(), labels.len(), "length mismatch");
    if probabilities.is_empty() {
        return 0.0;
    }
    let eps = 1e-12;
    probabilities
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = p.clamp(eps, 1.0 - eps);
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        })
        .sum::<f64>()
        / probabilities.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1.0, 0.0, 1.0], &[1.0, 1.0, 1.0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0.0, 1.0, 1.0, 2.0], &[0.0, 1.0, 2.0, 2.0], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][1], 1);
        assert_eq!(m[2][2], 1);
        let total: usize = m.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn precision_recall_and_f1() {
        // predictions: TP, FP, FN, TN
        let preds = [1.0, 1.0, 0.0, 0.0];
        let labels = [1.0, 0.0, 1.0, 0.0];
        let (p, r) = precision_recall(&preds, &labels);
        assert_eq!(p, 0.5);
        assert_eq!(r, 0.5);
        assert!((f1_score(&preds, &labels) - 0.5).abs() < 1e-12);

        // Degenerate case: no positive predictions or labels.
        let (p, r) = precision_recall(&[0.0], &[0.0]);
        assert_eq!((p, r), (0.0, 0.0));
        assert_eq!(f1_score(&[0.0], &[0.0]), 0.0);
    }

    #[test]
    fn regression_metrics() {
        let preds = [1.0, 2.0, 3.0];
        let targets = [1.0, 2.0, 3.0];
        assert_eq!(mean_squared_error(&preds, &targets), 0.0);
        assert_eq!(r2_score(&preds, &targets), 1.0);

        let bad = [2.0, 2.0, 2.0]; // predicting the mean
        assert!((r2_score(&bad, &targets) - 0.0).abs() < 1e-12);
        assert!(mean_squared_error(&bad, &targets) > 0.0);

        // Constant targets have undefined R²; we define it as 0.
        assert_eq!(r2_score(&[1.0, 1.0], &[5.0, 5.0]), 0.0);
        assert_eq!(mean_squared_error(&[], &[]), 0.0);
    }

    #[test]
    fn log_loss_behaviour() {
        // Confident correct predictions → small loss; wrong → large.
        let good = log_loss(&[0.99, 0.01], &[1.0, 0.0]);
        let bad = log_loss(&[0.01, 0.99], &[1.0, 0.0]);
        assert!(good < 0.05);
        assert!(bad > 2.0);
        assert_eq!(log_loss(&[], &[]), 0.0);
        // Clamping keeps exact 0/1 probabilities finite.
        assert!(log_loss(&[1.0], &[0.0]).is_finite());
    }
}
