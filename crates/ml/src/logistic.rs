//! Binary logistic regression trained with L-BFGS.
//!
//! This is the paper's headline workload: "logistic regression (L-BFGS for
//! optimization) … 10 iterations".  The loss below is the standard averaged
//! negative log-likelihood with optional L2 regularisation; its value and
//! gradient are computed in a single chunk-parallel, **sequential** sweep
//! over the rows of any [`RowStore`], driven by the shared [`ExecContext`] —
//! the access pattern that makes memory-mapped training I/O-friendly.  Each
//! chunk runs through the fused gemv + sigmoid + residual kernels
//! ([`kernels::logistic_value_chunk`] / [`kernels::logistic_grad_chunk`]),
//! with per-worker score buffers reused across chunks.
//!
//! Sparse data trains through the same trainer via
//! [`crate::api::SparseEstimator::fit_sparse`]: [`SparseLogisticLoss`] runs
//! the fused CSR kernels over the context's sparse sweep, touching only the
//! stored entries, and hands the identical L-BFGS protocol the same kind of
//! objective — so the produced [`LogisticModel`] is the same type with the
//! same guarantees.

use m3_core::chunked::RowChunk;
use m3_core::sparse::{SparseRowChunk, SparseRowStore};
use m3_core::storage::RowStore;
use m3_core::{ExecContext, ParamVec};
use m3_linalg::{kernels, ops};
use m3_optim::function::{DifferentiableFunction, StochasticFunction};
use m3_optim::lbfgs::Lbfgs;
use m3_optim::termination::{OptimizationResult, TerminationCriteria};

use crate::api::{Estimator, Model, SparseEstimator};
use crate::solver::Solver;
use crate::{MlError, Result};

/// Numerically stable sigmoid (re-exported from the kernel layer).
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    kernels::sigmoid(z)
}

/// Numerically stable `ln(1 + e^z)`.
#[inline]
fn log1p_exp(z: f64) -> f64 {
    kernels::log1p_exp(z)
}

/// The averaged logistic loss over a [`RowStore`], with L2 regularisation.
///
/// Parameter layout: `[w_1 … w_d, b]` (`d + 1` values); the bias is not
/// regularised.  Implements both [`DifferentiableFunction`] (for L-BFGS /
/// batch GD) and [`StochasticFunction`] (for SGD).  All full-data sweeps run
/// through the [`ExecContext`] supplied at construction.
pub struct LogisticLoss<'a, S: RowStore + Sync + ?Sized> {
    data: &'a S,
    labels: &'a [f64],
    /// L2 regularisation strength λ.
    pub l2: f64,
    ctx: &'a ExecContext,
}

impl<'a, S: RowStore + Sync + ?Sized> LogisticLoss<'a, S> {
    /// Create the loss for `data` (rows = examples) and `labels` in `{0, 1}`,
    /// sweeping under `ctx`'s execution policy.
    pub fn new(data: &'a S, labels: &'a [f64], l2: f64, ctx: &'a ExecContext) -> Self {
        assert_eq!(
            data.n_rows(),
            labels.len(),
            "labels must match the number of rows"
        );
        Self {
            data,
            labels,
            l2,
            ctx,
        }
    }

    fn n_features(&self) -> usize {
        self.data.n_cols()
    }

    /// Linear score `w·x + b` of one row.
    #[inline]
    fn score(w: &[f64], row: &[f64]) -> f64 {
        let d = row.len();
        ops::dot(&w[..d], row) + w[d]
    }
}

impl<S: RowStore + Sync + ?Sized> DifferentiableFunction for LogisticLoss<'_, S> {
    fn dimension(&self) -> usize {
        self.n_features() + 1
    }

    fn value(&self, w: &[f64]) -> f64 {
        let n = self.data.n_rows();
        let d = self.n_features();
        if n == 0 {
            return 0.0;
        }
        // Fused gemv + softplus per chunk; each pool worker reuses one score
        // buffer for every chunk it maps.
        let loss = self.ctx.map_reduce_rows_scratch(
            self.data,
            Vec::new,
            |scores, chunk| {
                let labels = &self.labels[chunk.start_row..chunk.end_row];
                kernels::logistic_value_chunk(chunk.data, &w[..d], w[d], labels, scores)
            },
            0.0,
            |a, b| a + b,
        );
        let reg = 0.5 * self.l2 * ops::dot(&w[..d], &w[..d]);
        loss / n as f64 + reg
    }

    fn gradient(&self, w: &[f64], grad: &mut [f64]) {
        self.value_and_gradient(w, grad);
    }

    fn value_and_gradient(&self, w: &[f64], grad: &mut [f64]) -> f64 {
        let n = self.data.n_rows();
        let d = self.n_features();
        if n == 0 {
            grad.fill(0.0);
            return 0.0;
        }
        // Fused gemv + sigmoid + residual + gemv_t per chunk: the partial
        // gradient is the chunk's output (folded in chunk order), while the
        // score/residual buffer is per-worker scratch reused across chunks.
        let (loss, partial_grad) = self.ctx.map_reduce_rows_scratch(
            self.data,
            Vec::new,
            |scores, chunk| {
                let labels = &self.labels[chunk.start_row..chunk.end_row];
                let mut g = vec![0.0; d + 1];
                let acc =
                    kernels::logistic_grad_chunk(chunk.data, &w[..d], w[d], labels, scores, &mut g);
                (acc, g)
            },
            (0.0, vec![0.0; d + 1]),
            |(la, mut ga), (lb, gb)| {
                ops::add_assign(&mut ga, &gb);
                (la + lb, ga)
            },
        );

        let inv_n = 1.0 / n as f64;
        for (gi, pi) in grad.iter_mut().zip(&partial_grad) {
            *gi = pi * inv_n;
        }
        // L2 term (bias excluded).
        ops::axpy(self.l2, &w[..d], &mut grad[..d]);
        loss * inv_n + 0.5 * self.l2 * ops::dot(&w[..d], &w[..d])
    }
}

impl<S: RowStore + Sync + ?Sized> StochasticFunction for LogisticLoss<'_, S> {
    fn n_examples(&self) -> usize {
        self.data.n_rows()
    }

    fn batch_value_and_gradient(&self, w: &[f64], examples: &[usize], grad: &mut [f64]) -> f64 {
        let d = self.n_features();
        grad.fill(0.0);
        if examples.is_empty() {
            return 0.0;
        }
        let mut loss = 0.0;
        for &i in examples {
            let row = self.data.row(i);
            let y = self.labels[i];
            let z = Self::score(w, row);
            loss += log1p_exp(z) - y * z;
            let residual = sigmoid(z) - y;
            ops::axpy(residual, row, &mut grad[..d]);
            grad[d] += residual;
        }
        let inv = 1.0 / examples.len() as f64;
        ops::scale(inv, grad);
        ops::axpy(self.l2, &w[..d], &mut grad[..d]);
        loss * inv + 0.5 * self.l2 * ops::dot(&w[..d], &w[..d])
    }

    /// Contiguous batches go through the fused chunk kernel over a zero-copy
    /// `rows_slice` view — no index gather, and for mmap-backed stores the
    /// access stays sequential (the pattern SGD's `ShuffledChunks` scheme
    /// exists to preserve).
    fn batch_range_value_and_gradient(
        &self,
        w: &[f64],
        examples: std::ops::Range<usize>,
        grad: &mut [f64],
    ) -> f64 {
        let d = self.n_features();
        grad.fill(0.0);
        if examples.is_empty() {
            return 0.0;
        }
        let (start, end) = (examples.start, examples.end);
        let rows = self.data.rows_slice(start, end);
        let labels = &self.labels[start..end];
        let loss = crate::solver::with_scores(|scores| {
            kernels::logistic_grad_chunk(rows, &w[..d], w[d], labels, scores, grad)
        });
        let inv = 1.0 / (end - start) as f64;
        ops::scale(inv, grad);
        ops::axpy(self.l2, &w[..d], &mut grad[..d]);
        loss * inv + 0.5 * self.l2 * ops::dot(&w[..d], &w[..d])
    }
}

/// The averaged logistic loss over a [`SparseRowStore`] — the CSR twin of
/// [`LogisticLoss`], with the same parameter layout (`[w_1 … w_d, b]`, bias
/// unregularised).  Chunks run through the fused sparse kernels
/// ([`kernels::logistic_value_chunk_csr`] /
/// [`kernels::logistic_grad_chunk_csr`]) under the context's sparse sweep
/// driver, so only the stored entries are ever touched.
pub struct SparseLogisticLoss<'a, S: SparseRowStore + Sync + ?Sized> {
    data: &'a S,
    labels: &'a [f64],
    /// L2 regularisation strength λ.
    pub l2: f64,
    ctx: &'a ExecContext,
}

impl<'a, S: SparseRowStore + Sync + ?Sized> SparseLogisticLoss<'a, S> {
    /// Create the loss for sparse `data` and `labels` in `{0, 1}`, sweeping
    /// under `ctx`'s execution policy.
    pub fn new(data: &'a S, labels: &'a [f64], l2: f64, ctx: &'a ExecContext) -> Self {
        assert_eq!(
            data.n_rows(),
            labels.len(),
            "labels must match the number of rows"
        );
        Self {
            data,
            labels,
            l2,
            ctx,
        }
    }

    fn n_features(&self) -> usize {
        self.data.n_cols()
    }
}

impl<S: SparseRowStore + Sync + ?Sized> DifferentiableFunction for SparseLogisticLoss<'_, S> {
    fn dimension(&self) -> usize {
        self.n_features() + 1
    }

    fn value(&self, w: &[f64]) -> f64 {
        let n = self.data.n_rows();
        let d = self.n_features();
        if n == 0 {
            return 0.0;
        }
        let loss = self.ctx.map_reduce_sparse_rows_scratch(
            self.data,
            Vec::new,
            |scores, chunk| {
                let labels = &self.labels[chunk.start_row..chunk.end_row];
                kernels::logistic_value_chunk_csr(
                    chunk.indptr,
                    chunk.indices,
                    chunk.values,
                    &w[..d],
                    w[d],
                    labels,
                    scores,
                )
            },
            0.0,
            |a, b| a + b,
        );
        let reg = 0.5 * self.l2 * ops::dot(&w[..d], &w[..d]);
        loss / n as f64 + reg
    }

    fn gradient(&self, w: &[f64], grad: &mut [f64]) {
        self.value_and_gradient(w, grad);
    }

    fn value_and_gradient(&self, w: &[f64], grad: &mut [f64]) -> f64 {
        let n = self.data.n_rows();
        let d = self.n_features();
        if n == 0 {
            grad.fill(0.0);
            return 0.0;
        }
        let (loss, partial_grad) = self.ctx.map_reduce_sparse_rows_scratch(
            self.data,
            Vec::new,
            |scores, chunk| {
                let labels = &self.labels[chunk.start_row..chunk.end_row];
                let mut g = vec![0.0; d + 1];
                let acc = kernels::logistic_grad_chunk_csr(
                    chunk.indptr,
                    chunk.indices,
                    chunk.values,
                    &w[..d],
                    w[d],
                    labels,
                    scores,
                    &mut g,
                );
                (acc, g)
            },
            (0.0, vec![0.0; d + 1]),
            |(la, mut ga), (lb, gb)| {
                ops::add_assign(&mut ga, &gb);
                (la + lb, ga)
            },
        );

        let inv_n = 1.0 / n as f64;
        for (gi, pi) in grad.iter_mut().zip(&partial_grad) {
            *gi = pi * inv_n;
        }
        ops::axpy(self.l2, &w[..d], &mut grad[..d]);
        loss * inv_n + 0.5 * self.l2 * ops::dot(&w[..d], &w[..d])
    }
}

impl<S: SparseRowStore + Sync + ?Sized> StochasticFunction for SparseLogisticLoss<'_, S> {
    fn n_examples(&self) -> usize {
        self.data.n_rows()
    }

    fn batch_value_and_gradient(&self, w: &[f64], examples: &[usize], grad: &mut [f64]) -> f64 {
        let d = self.n_features();
        grad.fill(0.0);
        if examples.is_empty() {
            return 0.0;
        }
        let indptr = self.data.indptr();
        let indices = self.data.indices();
        let values = self.data.values();
        let mut loss = 0.0;
        for &i in examples {
            let (s, e) = (indptr[i] as usize, indptr[i + 1] as usize);
            let y = self.labels[i];
            let z = kernels::sparse_dot(&indices[s..e], &values[s..e], &w[..d]) + w[d];
            loss += log1p_exp(z) - y * z;
            let residual = sigmoid(z) - y;
            kernels::scatter_axpy(residual, &indices[s..e], &values[s..e], &mut grad[..d]);
            grad[d] += residual;
        }
        let inv = 1.0 / examples.len() as f64;
        ops::scale(inv, grad);
        ops::axpy(self.l2, &w[..d], &mut grad[..d]);
        loss * inv + 0.5 * self.l2 * ops::dot(&w[..d], &w[..d])
    }

    /// Contiguous batches hand three zero-copy CSR slices to the fused
    /// sparse chunk kernel — only the batch's stored entries are touched.
    fn batch_range_value_and_gradient(
        &self,
        w: &[f64],
        examples: std::ops::Range<usize>,
        grad: &mut [f64],
    ) -> f64 {
        let d = self.n_features();
        grad.fill(0.0);
        if examples.is_empty() {
            return 0.0;
        }
        let (start, end) = (examples.start, examples.end);
        let chunk = self.data.sparse_chunk(start, end);
        let labels = &self.labels[start..end];
        let loss = crate::solver::with_scores(|scores| {
            kernels::logistic_grad_chunk_csr(
                chunk.indptr,
                chunk.indices,
                chunk.values,
                &w[..d],
                w[d],
                labels,
                scores,
                grad,
            )
        });
        let inv = 1.0 / (end - start) as f64;
        ops::scale(inv, grad);
        ops::axpy(self.l2, &w[..d], &mut grad[..d]);
        loss * inv + 0.5 * self.l2 * ops::dot(&w[..d], &w[..d])
    }
}

/// Hyper-parameters for [`LogisticRegression`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticConfig {
    /// L2 regularisation strength.
    pub l2: f64,
    /// Maximum L-BFGS iterations.
    pub max_iterations: usize,
    /// When `true`, run exactly `max_iterations` iterations with convergence
    /// tolerances disabled (the paper's protocol).
    pub fixed_iterations: bool,
    /// L-BFGS history size.
    pub history_size: usize,
    /// Which optimiser trains the model (default: L-BFGS, the paper's
    /// protocol).  `max_iterations`/`fixed_iterations`/`history_size` apply
    /// to the L-BFGS arm only; the SGD arm carries its own schedule.
    pub solver: Solver,
    /// Legacy worker-thread count (`0` = all hardware threads), honoured only
    /// by the deprecated inherent [`LogisticRegression::fit`] shim.  The
    /// [`Estimator`] API takes execution policy from its [`ExecContext`].
    pub n_threads: usize,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            l2: 1e-4,
            max_iterations: 100,
            fixed_iterations: false,
            history_size: 10,
            solver: Solver::Lbfgs,
            n_threads: 0,
        }
    }
}

impl LogisticConfig {
    /// The paper's configuration: exactly 10 L-BFGS iterations.
    pub fn paper() -> Self {
        Self {
            max_iterations: 10,
            fixed_iterations: true,
            ..Self::default()
        }
    }
}

/// Binary logistic-regression trainer.
#[derive(Debug, Clone, Default)]
pub struct LogisticRegression {
    config: LogisticConfig,
}

impl LogisticRegression {
    /// Create a trainer with the given configuration.
    pub fn new(config: LogisticConfig) -> Self {
        Self { config }
    }

    /// Train on `data` (rows = examples) with labels in `{0, 1}`.
    ///
    /// # Errors
    /// Fails when shapes disagree, data is empty, labels are not binary, or
    /// the optimiser diverges.
    #[deprecated(
        since = "0.1.0",
        note = "use `Estimator::fit(&self, data, labels, &ExecContext)` instead"
    )]
    pub fn fit<S: RowStore + Sync + ?Sized>(
        &self,
        data: &S,
        labels: &[f64],
    ) -> Result<LogisticModel> {
        Estimator::fit(
            self,
            data,
            labels,
            &ExecContext::new().with_threads(self.config.n_threads),
        )
    }
}

impl LogisticRegression {
    /// Shared validation for the dense and sparse fit paths.
    fn validate(n_rows: usize, n_cols: usize, labels: &[f64]) -> Result<()> {
        if n_rows == 0 || n_cols == 0 {
            return Err(MlError::InvalidData("training data is empty".to_string()));
        }
        if n_rows != labels.len() {
            return Err(MlError::ShapeMismatch {
                expected: format!("{n_rows} labels"),
                found: format!("{} labels", labels.len()),
            });
        }
        if labels.iter().any(|&l| l != 0.0 && l != 1.0) {
            return Err(MlError::InvalidData(
                "binary logistic regression requires labels in {0, 1}".to_string(),
            ));
        }
        Ok(())
    }

    /// Run the configured solver on any logistic objective of `d + 1`
    /// parameters and wrap the optimum as a model — shared by the dense and
    /// sparse fit paths, so both run the exact same optimiser protocol.
    fn solve(
        &self,
        loss: &(impl StochasticFunction + Sync),
        d: usize,
        ctx: &ExecContext,
    ) -> Result<LogisticModel> {
        let result = match &self.config.solver {
            Solver::Lbfgs => {
                let optimizer = if self.config.fixed_iterations {
                    Lbfgs::with_fixed_iterations(self.config.max_iterations)
                        .history(self.config.history_size)
                } else {
                    Lbfgs::new()
                        .history(self.config.history_size)
                        .criteria(TerminationCriteria {
                            max_iterations: self.config.max_iterations,
                            ..Default::default()
                        })
                };
                let initial = vec![0.0; d + 1];
                let result = optimizer.run(loss, initial);
                if !result.converged() && result.weights.iter().any(|w| !w.is_finite()) {
                    return Err(MlError::OptimizationFailed(format!(
                        "L-BFGS terminated with {:?}",
                        result.reason
                    )));
                }
                result
            }
            Solver::Sgd(sgd) => crate::solver::run_sgd(sgd, loss, d + 1, ctx)?,
        };
        let (weights, bias) = split_weights(&result.weights);
        Ok(LogisticModel {
            weights: weights.into(),
            bias,
            optimization: result,
        })
    }
}

impl Estimator for LogisticRegression {
    type Model = LogisticModel;

    fn fit<S: RowStore + Sync + ?Sized>(
        &self,
        data: &S,
        labels: &[f64],
        ctx: &ExecContext,
    ) -> Result<LogisticModel> {
        Self::validate(data.n_rows(), data.n_cols(), labels)?;
        let loss = LogisticLoss::new(data, labels, self.config.l2, ctx);
        self.solve(&loss, data.n_cols(), ctx)
    }
}

impl SparseEstimator for LogisticRegression {
    fn fit_sparse<S: SparseRowStore + Sync + ?Sized>(
        &self,
        data: &S,
        labels: &[f64],
        ctx: &ExecContext,
    ) -> Result<LogisticModel> {
        Self::validate(data.n_rows(), data.n_cols(), labels)?;
        let loss = SparseLogisticLoss::new(data, labels, self.config.l2, ctx);
        self.solve(&loss, data.n_cols(), ctx)
    }
}

fn split_weights(packed: &[f64]) -> (Vec<f64>, f64) {
    let d = packed.len() - 1;
    (packed[..d].to_vec(), packed[d])
}

/// A trained binary logistic-regression model.
///
/// The weights live in a [`ParamVec`]: owned after training, or a zero-copy
/// view into a memory-mapped artifact after [`LogisticModel::load`].
#[derive(Debug, Clone)]
pub struct LogisticModel {
    /// Feature weights.
    pub weights: ParamVec,
    /// Intercept.
    pub bias: f64,
    /// Statistics of the training run (iterations, evaluations, loss curve).
    /// Synthetic (empty) for models loaded from an artifact.
    pub optimization: OptimizationResult,
}

impl LogisticModel {
    /// Probability that `row` belongs to class 1.
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        assert_eq!(row.len(), self.weights.len(), "feature count mismatch");
        sigmoid(ops::dot(row, &self.weights) + self.bias)
    }

    /// Predicted class (0 or 1) for `row`.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        if self.predict_proba_row(row) >= 0.5 {
            1.0
        } else {
            0.0
        }
    }

    /// Class-1 probabilities for every row of `data`.
    pub fn predict_proba<S: RowStore + ?Sized>(&self, data: &S) -> Vec<f64> {
        (0..data.n_rows())
            .map(|r| self.predict_proba_row(data.row(r)))
            .collect()
    }

    /// Predicted classes for every row of `data`.
    pub fn predict<S: RowStore + ?Sized>(&self, data: &S) -> Vec<f64> {
        (0..data.n_rows())
            .map(|r| self.predict_row(data.row(r)))
            .collect()
    }

    /// Classification accuracy over `data`.
    pub fn accuracy<S: RowStore + ?Sized>(&self, data: &S, labels: &[f64]) -> f64 {
        crate::metrics::accuracy(&self.predict(data), labels)
    }
}

impl Model for LogisticModel {
    fn n_features(&self) -> usize {
        self.weights.len()
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        LogisticModel::predict_row(self, row)
    }

    /// Fused chunk kernel: one gemv over the chunk, then sigmoid + threshold.
    fn predict_chunk(&self, chunk: RowChunk<'_>, out: &mut Vec<f64>) {
        let start = out.len();
        out.resize(start + chunk.n_rows(), 0.0);
        kernels::logistic_predict_chunk(chunk.data, &self.weights, self.bias, &mut out[start..]);
    }

    fn score(&self, data: &dyn RowStore, labels: &[f64]) -> f64 {
        self.accuracy(&data, labels)
    }
}

impl crate::api::SparsePredictor for LogisticModel {
    fn predict_sparse_chunk(&self, chunk: SparseRowChunk<'_>, out: &mut Vec<f64>) {
        let start = out.len();
        out.resize(start + chunk.n_rows(), 0.0);
        kernels::logistic_predict_chunk_csr(
            chunk.indptr,
            chunk.indices,
            chunk.values,
            &self.weights,
            self.bias,
            &mut out[start..],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_data::{LinearProblem, RowGenerator};
    use m3_linalg::DenseMatrix;
    use m3_optim::function::gradient_check;
    use m3_optim::sgd::Sgd;

    fn toy_problem(n: usize) -> (DenseMatrix, Vec<f64>) {
        LinearProblem::classification(vec![1.5, -2.0, 0.5], 0.25, 0.05, 7).materialize(n)
    }

    #[test]
    fn sigmoid_is_stable_and_correct() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!(sigmoid(800.0) <= 1.0);
    }

    #[test]
    fn loss_gradient_matches_numerical_gradient() {
        let (x, y) = toy_problem(60);
        let ctx = ExecContext::new().with_threads(2);
        let loss = LogisticLoss::new(&x, &y, 0.01, &ctx);
        let w: Vec<f64> = (0..4).map(|i| 0.1 * i as f64 - 0.2).collect();
        let err = gradient_check(&loss, &w, 1e-5);
        assert!(err < 1e-6, "gradient error {err}");
    }

    #[test]
    fn loss_is_lower_at_true_weights_than_at_zero() {
        let (x, y) = toy_problem(200);
        let ctx = ExecContext::serial();
        let loss = LogisticLoss::new(&x, &y, 0.0, &ctx);
        let zero = loss.value(&[0.0; 4]);
        let good = loss.value(&[1.5, -2.0, 0.5, 0.25]);
        assert!(good < zero);
    }

    #[test]
    fn parallel_and_serial_gradients_are_bit_identical() {
        let (x, y) = toy_problem(101);
        let w: Vec<f64> = vec![0.3, -0.1, 0.2, 0.05];
        let serial_ctx = ExecContext::serial().with_chunk_bytes(m3_core::PAGE_SIZE);
        let parallel_ctx = ExecContext::new()
            .with_threads(4)
            .with_chunk_bytes(m3_core::PAGE_SIZE)
            .with_parallel_threshold(0); // force the pool even at test scale
        let serial = LogisticLoss::new(&x, &y, 0.01, &serial_ctx);
        let parallel = LogisticLoss::new(&x, &y, 0.01, &parallel_ctx);
        let mut gs = vec![0.0; 4];
        let mut gp = vec![0.0; 4];
        let vs = serial.value_and_gradient(&w, &mut gs);
        let vp = parallel.value_and_gradient(&w, &mut gp);
        // The ExecContext folds chunk partials in a fixed order, so parallel
        // and serial runs agree exactly, not just approximately.
        assert_eq!(vs.to_bits(), vp.to_bits());
        for (a, b) in gs.iter().zip(&gp) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fit_recovers_a_separable_problem() {
        let (x, y) = toy_problem(400);
        let trainer = LogisticRegression::new(LogisticConfig::default());
        let model = Estimator::fit(&trainer, &x, &y, &ExecContext::new()).unwrap();
        let acc = model.accuracy(&x, &y);
        assert!(acc > 0.95, "training accuracy {acc}");
        // The learnt hyperplane should correlate with the true one.
        let true_w = [1.5, -2.0, 0.5];
        let cosine = ops::dot(&model.weights, &true_w)
            / (m3_linalg::norm::l2(&model.weights) * m3_linalg::norm::l2(&true_w));
        assert!(cosine > 0.9, "cosine similarity {cosine}");
    }

    #[test]
    fn deprecated_inherent_fit_matches_trait_fit() {
        let (x, y) = toy_problem(150);
        let trainer = LogisticRegression::new(LogisticConfig {
            max_iterations: 15,
            ..Default::default()
        });
        #[allow(deprecated)]
        let old = LogisticRegression::fit(&trainer, &x, &y).unwrap();
        let new = Estimator::fit(&trainer, &x, &y, &ExecContext::new()).unwrap();
        assert!(ops::approx_eq(&old.weights, &new.weights, 1e-12));
        assert!((old.bias - new.bias).abs() < 1e-12);
    }

    #[test]
    fn paper_config_runs_exactly_ten_iterations() {
        let (x, y) = toy_problem(300);
        let trainer = LogisticRegression::new(LogisticConfig::paper());
        let model = Estimator::fit(&trainer, &x, &y, &ExecContext::new()).unwrap();
        assert_eq!(model.optimization.iterations, 10);
        assert!(model.accuracy(&x, &y) > 0.85);
    }

    #[test]
    fn in_memory_and_mmap_training_agree() {
        // The Table 1 claim, end to end: identical results from the same
        // algorithm over a DenseMatrix and over a memory-mapped copy.
        let (x, y) = toy_problem(250);
        let dir = tempfile::tempdir().unwrap();
        let mapped = m3_core::alloc::persist_matrix(dir.path().join("train.m3"), &x).unwrap();

        let ctx = ExecContext::new().with_threads(2);
        let trainer = LogisticRegression::default();
        let in_memory = Estimator::fit(&trainer, &x, &y, &ctx).unwrap();
        let out_of_core = Estimator::fit(&trainer, &mapped, &y, &ctx).unwrap();

        for (a, b) in in_memory.weights.iter().zip(&out_of_core.weights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(in_memory.bias.to_bits(), out_of_core.bias.to_bits());
    }

    #[test]
    fn sgd_training_via_stochastic_interface() {
        let (x, y) = toy_problem(300);
        let ctx = ExecContext::serial();
        let loss = LogisticLoss::new(&x, &y, 1e-4, &ctx);
        let result = Sgd::new()
            .learning_rate(0.5)
            .epochs(60)
            .batch_size(32)
            .run(&loss, vec![0.0; 4])
            .unwrap();
        let (weights, bias) = split_weights(&result.weights);
        let model = LogisticModel {
            weights: weights.into(),
            bias,
            optimization: result,
        };
        assert!(model.accuracy(&x, &y) > 0.9);
    }

    /// The toy problem with most entries zeroed out, as CSR + densified twin.
    fn sparse_toy_problem(n: usize) -> (m3_linalg::CsrMatrix, DenseMatrix, Vec<f64>) {
        let (x, y) = toy_problem(n);
        let mut data = x.as_slice().to_vec();
        for (i, v) in data.iter_mut().enumerate() {
            // Deterministically zero ~2/3 of the entries.
            if (i * 2654435761) % 3 != 0 {
                *v = 0.0;
            }
        }
        let dense = DenseMatrix::from_vec(data, x.n_rows(), x.n_cols()).unwrap();
        (m3_linalg::CsrMatrix::from_dense(&dense), dense, y)
    }

    #[test]
    fn sparse_loss_gradient_matches_numerical_gradient() {
        let (csr, _, y) = sparse_toy_problem(60);
        let ctx = ExecContext::new().with_threads(2);
        let loss = SparseLogisticLoss::new(&csr, &y, 0.01, &ctx);
        let w: Vec<f64> = (0..4).map(|i| 0.1 * i as f64 - 0.2).collect();
        let err = gradient_check(&loss, &w, 1e-5);
        assert!(err < 1e-6, "gradient error {err}");
    }

    #[test]
    fn sparse_loss_agrees_with_dense_loss_on_the_same_data() {
        let (csr, dense, y) = sparse_toy_problem(120);
        let ctx = ExecContext::serial();
        let w = [0.4, -0.3, 0.2, 0.1];
        let mut gs = vec![0.0; 4];
        let mut gd = vec![0.0; 4];
        let vs = SparseLogisticLoss::new(&csr, &y, 0.01, &ctx).value_and_gradient(&w, &mut gs);
        let vd = LogisticLoss::new(&dense, &y, 0.01, &ctx).value_and_gradient(&w, &mut gd);
        // Same math, different summation bracketing (zeros are skipped):
        // equal to high relative precision, not necessarily bit-equal.
        assert!((vs - vd).abs() <= 1e-12 * (1.0 + vd.abs()), "{vs} vs {vd}");
        for (a, b) in gs.iter().zip(&gd) {
            assert!((a - b).abs() <= 1e-12 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_fit_is_bit_identical_across_thread_counts_and_backings() {
        let (csr, _, y) = sparse_toy_problem(200);
        let dir = tempfile::tempdir().unwrap();
        let mapped = m3_core::sparse::persist_csr(dir.path().join("sp.m3csr"), &csr, None).unwrap();
        let trainer = LogisticRegression::new(LogisticConfig {
            max_iterations: 15,
            ..Default::default()
        });
        let run = |data: &dyn Fn(&ExecContext) -> LogisticModel, threads: usize| {
            data(
                &ExecContext::new()
                    .with_threads(threads)
                    .with_chunk_bytes(m3_core::PAGE_SIZE)
                    .with_parallel_threshold(0),
            )
        };
        let on_mem = |ctx: &ExecContext| trainer.fit_sparse(&csr, &y, ctx).unwrap();
        let on_map = |ctx: &ExecContext| trainer.fit_sparse(&mapped, &y, ctx).unwrap();
        let reference = run(&on_mem, 1);
        for threads in [2usize, 4] {
            for model in [run(&on_mem, threads), run(&on_map, threads)] {
                for (a, b) in reference.weights.iter().zip(&model.weights) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                assert_eq!(reference.bias.to_bits(), model.bias.to_bits());
            }
        }
    }

    #[test]
    fn sparse_fit_validation_errors() {
        let (csr, _, y) = sparse_toy_problem(10);
        let trainer = LogisticRegression::default();
        let ctx = ExecContext::new();
        assert!(matches!(
            trainer.fit_sparse(&csr, &y[..5], &ctx),
            Err(MlError::ShapeMismatch { .. })
        ));
        let bad = vec![3.0; 10];
        assert!(matches!(
            trainer.fit_sparse(&csr, &bad, &ctx),
            Err(MlError::InvalidData(_))
        ));
        let empty = m3_linalg::CsrBuilder::new(3).finish();
        assert!(trainer.fit_sparse(&empty, &[], &ctx).is_err());
    }

    #[test]
    fn validation_errors() {
        let (x, y) = toy_problem(10);
        let trainer = LogisticRegression::default();
        let ctx = ExecContext::new();
        assert!(matches!(
            Estimator::fit(&trainer, &x, &y[..5], &ctx),
            Err(MlError::ShapeMismatch { .. })
        ));
        let bad_labels = vec![2.0; 10];
        assert!(matches!(
            Estimator::fit(&trainer, &x, &bad_labels, &ctx),
            Err(MlError::InvalidData(_))
        ));
        let empty = DenseMatrix::zeros(0, 3);
        assert!(matches!(
            Estimator::fit(&trainer, &empty, &[], &ctx),
            Err(MlError::InvalidData(_))
        ));
    }

    #[test]
    fn predictions_and_probabilities_are_consistent() {
        let (x, y) = toy_problem(100);
        let model =
            Estimator::fit(&LogisticRegression::default(), &x, &y, &ExecContext::new()).unwrap();
        let probs = model.predict_proba(&x);
        let preds = model.predict(&x);
        for (p, c) in probs.iter().zip(&preds) {
            assert!((0.0..=1.0).contains(p));
            assert_eq!(*c == 1.0, *p >= 0.5);
        }
        // The Model trait view agrees with the inherent API.
        let as_model: &dyn Model = &model;
        assert_eq!(as_model.predict_batch(&x), preds);
        assert_eq!(as_model.score(&x, &y), model.accuracy(&x, &y));
    }

    #[test]
    fn empty_loss_is_zero() {
        let x = DenseMatrix::zeros(0, 2);
        let y: Vec<f64> = vec![];
        let ctx = ExecContext::new().with_threads(2);
        let loss = LogisticLoss::new(&x, &y, 0.0, &ctx);
        let mut g = vec![1.0; 3];
        assert_eq!(loss.value(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(loss.value_and_gradient(&[0.0, 0.0, 0.0], &mut g), 0.0);
        assert_eq!(g, vec![0.0; 3]);
        assert_eq!(
            loss.batch_value_and_gradient(&[0.0, 0.0, 0.0], &[], &mut g),
            0.0
        );
    }

    #[test]
    fn sgd_solver_trains_dense_and_sparse_models() {
        let (csr, dense, y) = sparse_toy_problem(300);
        let trainer = LogisticRegression::new(LogisticConfig {
            solver: Solver::Sgd(
                m3_optim::AsyncSgd::new()
                    .learning_rate(0.5)
                    .epochs(40)
                    .batch_size(32)
                    .seed(9),
            ),
            ..Default::default()
        });
        let ctx = ExecContext::new().with_threads(2);
        let dense_model = Estimator::fit(&trainer, &dense, &y, &ctx).unwrap();
        let sparse_model = trainer.fit_sparse(&csr, &y, &ctx).unwrap();
        // Labels predate the sparsification, so even the exact solver tops
        // out well below the dense problem's accuracy — just beat chance.
        let acc = dense_model.accuracy(&dense, &y);
        assert!(acc > 0.6, "training accuracy {acc}");
        // Deterministic SGD follows the same batch schedule on both layouts;
        // the fused dense and CSR kernels agree to rounding.
        for (a, b) in dense_model.weights.iter().zip(&sparse_model.weights) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        }
        assert!((dense_model.bias - sparse_model.bias).abs() <= 1e-9);
    }

    #[test]
    fn hogwild_sgd_solver_fits_dense_data() {
        let (x, y) = toy_problem(400);
        let trainer = LogisticRegression::new(LogisticConfig {
            solver: Solver::Sgd(
                m3_optim::AsyncSgd::new()
                    .learning_rate(0.5)
                    .epochs(30)
                    .batch_size(16)
                    .mode(m3_optim::UpdateMode::Hogwild)
                    .seed(33),
            ),
            ..Default::default()
        });
        let model = Estimator::fit(&trainer, &x, &y, &ExecContext::new().with_threads(4)).unwrap();
        assert!(model.accuracy(&x, &y) > 0.85);
    }
}
