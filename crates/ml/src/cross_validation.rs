//! k-fold cross-validation over row stores.
//!
//! Model selection is the obvious next step after the paper's fixed-protocol
//! experiments, and it multiplies the number of data sweeps — which is
//! exactly when the in-memory-vs-mmap question matters most.  The generic
//! driver here evaluates any [`Estimator`] over index folds under one shared
//! [`ExecContext`], gathering only the fold's rows into memory (the training
//! working set) while the full dataset stays memory-mapped.

use m3_core::storage::RowStore;
use m3_core::ExecContext;
use m3_linalg::DenseMatrix;

use crate::api::{Estimator, Model};
use crate::{MlError, Result};

/// Per-fold and aggregate scores of a cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossValidationResult {
    /// One score per fold (higher is better, e.g. accuracy or R²).
    pub fold_scores: Vec<f64>,
}

impl CrossValidationResult {
    /// Mean score across folds.
    pub fn mean(&self) -> f64 {
        if self.fold_scores.is_empty() {
            return 0.0;
        }
        self.fold_scores.iter().sum::<f64>() / self.fold_scores.len() as f64
    }

    /// Population standard deviation of the fold scores.
    pub fn std_dev(&self) -> f64 {
        if self.fold_scores.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        (self
            .fold_scores
            .iter()
            .map(|s| (s - mean).powi(2))
            .sum::<f64>()
            / self.fold_scores.len() as f64)
            .sqrt()
    }

    /// Number of folds evaluated.
    pub fn n_folds(&self) -> usize {
        self.fold_scores.len()
    }
}

/// Split `k` folds (deterministic in `seed`), call `train` on each fold's
/// training rows and `score` on its validation rows, and collect the scores.
///
/// `train` receives `(train_features, train_labels)` gathered into memory;
/// `score` receives `(model, validation_features, validation_labels)`.
///
/// This is the closure-level driver; prefer [`cross_validate_estimator`]
/// whenever the trainer implements [`Estimator`].
///
/// # Errors
/// Fails when the labels do not match the store, when `k` is invalid for the
/// row count, or when `train` fails on any fold.
pub fn cross_validate<S, M, T, E>(
    data: &S,
    labels: &[f64],
    k: usize,
    seed: u64,
    mut train: T,
    mut score: E,
) -> Result<CrossValidationResult>
where
    S: RowStore + Sync + ?Sized,
    T: FnMut(&DenseMatrix, &[f64]) -> Result<M>,
    E: FnMut(&M, &DenseMatrix, &[f64]) -> f64,
{
    if data.n_rows() != labels.len() {
        return Err(MlError::ShapeMismatch {
            expected: format!("{} labels", data.n_rows()),
            found: format!("{} labels", labels.len()),
        });
    }
    let folds = m3_data::split::k_fold(data.n_rows(), k, seed)
        .map_err(|e| MlError::InvalidData(e.to_string()))?;

    let mut fold_scores = Vec::with_capacity(folds.len());
    for fold in folds {
        let (train_x, train_y) = m3_data::split::gather_rows(data, &fold.train, Some(labels));
        let (valid_x, valid_y) = m3_data::split::gather_rows(data, &fold.validation, Some(labels));
        let model = train(&train_x, train_y.as_ref().expect("labels were provided"))?;
        fold_scores.push(score(
            &model,
            &valid_x,
            valid_y.as_ref().expect("labels were provided"),
        ));
    }
    Ok(CrossValidationResult { fold_scores })
}

/// Cross-validate any [`Estimator`] whose model implements [`Model`],
/// scoring each fold with [`Model::score`] under one shared [`ExecContext`].
///
/// # Errors
/// As [`cross_validate`].
pub fn cross_validate_estimator<S, E>(
    data: &S,
    labels: &[f64],
    estimator: &E,
    k: usize,
    seed: u64,
    ctx: &ExecContext,
) -> Result<CrossValidationResult>
where
    S: RowStore + Sync + ?Sized,
    E: Estimator,
    E::Model: Model,
{
    cross_validate(
        data,
        labels,
        k,
        seed,
        |x, y| estimator.fit(x, y, ctx),
        |model, x, y| model.score(x, y),
    )
}

/// Cross-validated accuracy of binary logistic regression with the given
/// configuration.
pub fn cross_validate_logistic<S: RowStore + Sync + ?Sized>(
    data: &S,
    labels: &[f64],
    config: &crate::logistic::LogisticConfig,
    k: usize,
    seed: u64,
    ctx: &ExecContext,
) -> Result<CrossValidationResult> {
    cross_validate_estimator(
        data,
        labels,
        &crate::logistic::LogisticRegression::new(config.clone()),
        k,
        seed,
        ctx,
    )
}

/// Cross-validated accuracy of softmax regression with the given
/// configuration.
pub fn cross_validate_softmax<S: RowStore + Sync + ?Sized>(
    data: &S,
    labels: &[f64],
    config: &crate::softmax::SoftmaxConfig,
    k: usize,
    seed: u64,
    ctx: &ExecContext,
) -> Result<CrossValidationResult> {
    cross_validate_estimator(
        data,
        labels,
        &crate::softmax::SoftmaxRegression::new(config.clone()),
        k,
        seed,
        ctx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::LogisticConfig;
    use crate::softmax::SoftmaxConfig;
    use m3_data::{GaussianBlobs, LinearProblem, RowGenerator};

    #[test]
    fn logistic_cross_validation_on_separable_data_scores_high() {
        let (x, y) = LinearProblem::random_classification(6, 0.05, 5).materialize(300);
        let result = cross_validate_logistic(
            &x,
            &y,
            &LogisticConfig {
                max_iterations: 40,
                ..Default::default()
            },
            5,
            7,
            &ExecContext::serial(),
        )
        .unwrap();
        assert_eq!(result.n_folds(), 5);
        assert!(result.mean() > 0.85, "mean accuracy {}", result.mean());
        assert!(result.std_dev() < 0.15);
    }

    #[test]
    fn softmax_cross_validation_over_mmap_data() {
        let dir = tempfile::tempdir().unwrap();
        let (x, y) = GaussianBlobs::new(3, 5, 15.0, 1.0, 9).materialize(240);
        let mapped = m3_core::alloc::persist_matrix(dir.path().join("cv.m3"), &x).unwrap();
        let result = cross_validate_softmax(
            &mapped,
            &y,
            &SoftmaxConfig {
                n_classes: 3,
                max_iterations: 30,
                ..Default::default()
            },
            4,
            1,
            &ExecContext::serial(),
        )
        .unwrap();
        assert_eq!(result.n_folds(), 4);
        assert!(result.mean() > 0.9, "mean accuracy {}", result.mean());
    }

    #[test]
    fn generic_estimator_driver_handles_unsupervised_models_too() {
        // KMeans rides the blanket UnsupervisedEstimator→Estimator adapter,
        // so the same driver cross-"validates" a clusterer (labels ignored,
        // score = negative inertia).
        let (x, y) = GaussianBlobs::new(3, 4, 12.0, 1.0, 3).materialize(120);
        let result = cross_validate_estimator(
            &x,
            &y,
            &crate::kmeans::KMeans::new(crate::kmeans::KMeansConfig {
                k: 3,
                max_iterations: 10,
                ..Default::default()
            }),
            4,
            2,
            &ExecContext::serial(),
        )
        .unwrap();
        assert_eq!(result.n_folds(), 4);
        // Negative inertia: higher (closer to zero) is better; well-separated
        // blobs cluster tightly, so the per-point score is small.
        assert!(result.mean() < 0.0);
        assert!(result.mean() > -10.0 * 120.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let (x, y) = LinearProblem::random_classification(4, 0.1, 2).materialize(120);
        let config = LogisticConfig {
            max_iterations: 20,
            ..Default::default()
        };
        let ctx = ExecContext::serial();
        let a = cross_validate_logistic(&x, &y, &config, 3, 11, &ctx).unwrap();
        let b = cross_validate_logistic(&x, &y, &config, 3, 11, &ctx).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn validation_errors_propagate() {
        let (x, y) = LinearProblem::random_classification(4, 0.1, 3).materialize(20);
        let ctx = ExecContext::new();
        // Label length mismatch.
        assert!(
            cross_validate_logistic(&x, &y[..10], &LogisticConfig::default(), 3, 0, &ctx).is_err()
        );
        // Too many folds for the row count.
        assert!(cross_validate_logistic(&x, &y, &LogisticConfig::default(), 50, 0, &ctx).is_err());
        // Trainer failure (non-binary labels) surfaces as an error.
        let bad: Vec<f64> = (0..20).map(|i| (i % 3) as f64).collect();
        assert!(cross_validate_logistic(&x, &bad, &LogisticConfig::default(), 3, 0, &ctx).is_err());
    }

    #[test]
    fn empty_result_statistics_are_zero() {
        let r = CrossValidationResult {
            fold_scores: vec![],
        };
        assert_eq!(r.mean(), 0.0);
        assert_eq!(r.std_dev(), 0.0);
        assert_eq!(r.n_folds(), 0);
    }
}
