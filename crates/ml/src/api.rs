//! The unified estimator/model API every algorithm in this crate implements.
//!
//! M3's storage abstraction ([`RowStore`]) makes "where the data lives" a
//! one-line change; this module does the same for "how training executes".
//! Following *MLI: An API for Distributed Machine Learning* (Sparks et al.),
//! a small common interface is what lets one codebase scale across execution
//! backends:
//!
//! * [`Estimator`] — an unfitted, configured trainer.  `fit` takes the data,
//!   the labels and an [`ExecContext`] (thread count, chunk size, `madvise`
//!   policy, tracing) and produces `Self::Model`.
//! * [`UnsupervisedEstimator`] — the label-free variant (k-means, scalers).
//!   Every unsupervised estimator is blanket-adapted into an [`Estimator`]
//!   that ignores its labels, so generic training loops handle both.
//! * [`Model`] — a fitted model: per-row and batch prediction plus a scalar
//!   goodness [`score`](Model::score).  Object-safe, so heterogeneous model
//!   collections (`Vec<Box<dyn Model>>`) work.
//! * [`Fit`] — a storage-parameterised view of [`Estimator`], handy for
//!   writing functions generic over "anything that can fit on this store".
//!
//! ## Example
//!
//! ```
//! use m3_core::ExecContext;
//! use m3_ml::api::{Estimator, Model};
//! use m3_ml::logistic::{LogisticConfig, LogisticRegression};
//! use m3_data::{LinearProblem, RowGenerator};
//!
//! let (x, y) = LinearProblem::random_classification(6, 0.05, 7).materialize(200);
//! let ctx = ExecContext::new();
//! let trainer = LogisticRegression::new(LogisticConfig::default());
//! let model = Estimator::fit(&trainer, &x, &y, &ctx).unwrap();
//! assert!(model.score(&x, &y) > 0.9);
//! ```
//!
//! (The explicit `Estimator::fit` form is used because the deprecated
//! inherent `fit` shims still occupy the method namespace on concrete
//! trainers; in generic code — `fn train<E: Estimator>(…)` — plain
//! `estimator.fit(data, labels, ctx)` works.)
//!
//! The same call trains over a [`m3_core::MmapMatrix`] or [`m3_core::Dataset`]
//! unchanged — and produces bit-identical parameters, which the workspace's
//! parity suite enforces.

use m3_core::chunked::RowChunk;
use m3_core::sparse::{SparseRowChunk, SparseRowStore};
use m3_core::storage::RowStore;
use m3_core::ExecContext;

use crate::Result;

/// A configured, unfitted supervised trainer.
///
/// Implementations read hyper-parameters from `self` and execution policy
/// (threads, chunking, advice, tracing) from the [`ExecContext`] — never from
/// their own config.  That split is what makes a future backend (sharded,
/// async, remote) a drop-in `ExecContext` change instead of a per-model edit.
pub trait Estimator {
    /// The fitted model this estimator produces.
    type Model;

    /// Train on `data` (rows = examples) with one label per row.
    ///
    /// # Errors
    /// Implementations fail on shape mismatches, empty or invalid data, and
    /// optimiser divergence.
    fn fit<S: RowStore + Sync + ?Sized>(
        &self,
        data: &S,
        labels: &[f64],
        ctx: &ExecContext,
    ) -> Result<Self::Model>;
}

/// An [`Estimator`] that can also train on compressed-sparse-row data.
///
/// The produced model type is the *same* as the dense path's — a model does
/// not care how its training rows were stored — so downstream prediction,
/// scoring and serialisation code is shared.  Training results agree with
/// the densified twin up to floating-point summation order (sparse kernels
/// skip the zero terms, which re-brackets the reductions), and are
/// bit-identical across thread counts and across in-memory
/// ([`m3_linalg::CsrMatrix`]) vs memory-mapped ([`m3_core::CsrFile`])
/// backings, exactly like the dense guarantee.
pub trait SparseEstimator: Estimator {
    /// Train on sparse `data` (rows = examples) with one label per row.
    ///
    /// # Errors
    /// As [`Estimator::fit`].
    fn fit_sparse<S: SparseRowStore + Sync + ?Sized>(
        &self,
        data: &S,
        labels: &[f64],
        ctx: &ExecContext,
    ) -> Result<Self::Model>;
}

/// A configured, unfitted unsupervised trainer (no labels).
pub trait UnsupervisedEstimator {
    /// The fitted model this estimator produces.
    type Model;

    /// Train on the rows of `data`.
    ///
    /// # Errors
    /// Implementations fail on empty or invalid data.
    fn fit<S: RowStore + Sync + ?Sized>(&self, data: &S, ctx: &ExecContext) -> Result<Self::Model>;
}

/// Every unsupervised estimator also trains through the supervised entry
/// point (labels are ignored), so generic pipelines need only [`Estimator`].
impl<U: UnsupervisedEstimator> Estimator for U {
    type Model = U::Model;

    fn fit<S: RowStore + Sync + ?Sized>(
        &self,
        data: &S,
        _labels: &[f64],
        ctx: &ExecContext,
    ) -> Result<Self::Model> {
        UnsupervisedEstimator::fit(self, data, ctx)
    }
}

/// A fitted model over `f64` feature rows.
///
/// Object-safe: predictions are a single `f64` per row (a class index for
/// classifiers and clusterers, a value for regressors) and batch inputs are
/// taken as `&dyn RowStore`.
pub trait Model {
    /// Number of features a prediction row must have.
    fn n_features(&self) -> usize;

    /// Predict a single row.
    fn predict_row(&self, row: &[f64]) -> f64;

    /// Predict every row of `data`.
    fn predict_batch(&self, data: &dyn RowStore) -> Vec<f64> {
        (0..data.n_rows())
            .map(|r| self.predict_row(data.row(r)))
            .collect()
    }

    /// Predict one contiguous chunk of rows, appending one value per row to
    /// `out`.
    ///
    /// The default loops [`predict_row`](Model::predict_row); models with a
    /// fused chunk kernel (gemv-based scoring, distance-argmin) override it.
    /// Either way the appended values must be bit-identical to the per-row
    /// loop — that contract is what lets
    /// [`BatchPredict::predict_batch_ctx`] split a batch across the worker
    /// pool without changing a single output bit.
    fn predict_chunk(&self, chunk: RowChunk<'_>, out: &mut Vec<f64>) {
        out.reserve(chunk.n_rows());
        for row in chunk.data.chunks_exact(chunk.n_cols.max(1)) {
            out.push(self.predict_row(row));
        }
    }

    /// A scalar goodness measure over `data` — higher is better.  Accuracy
    /// for classifiers, R² for regressors, negative inertia for clusterers
    /// (which ignore `labels`).
    fn score(&self, data: &dyn RowStore, labels: &[f64]) -> f64;
}

/// Batch prediction driven through an [`ExecContext`] — the serving-side
/// counterpart of `Estimator::fit`'s training sweeps.
///
/// Blanket-implemented for every `Model + Sync` (including trait objects such
/// as `dyn Model + Send + Sync`), so callers holding a heterogeneous model —
/// e.g. one loaded by [`crate::persist::load_model`] — get pooled prediction
/// without knowing the concrete type.  The batch is chunked exactly like a
/// training sweep and the per-chunk outputs are folded back **in chunk
/// order**, so the result is bit-identical to
/// [`Model::predict_batch`] regardless of thread count.
pub trait BatchPredict: Model + Sync {
    /// Predict every row of `data` under `ctx`'s execution policy (threads,
    /// chunk size, advice, tracing).
    fn predict_batch_ctx(&self, data: &(dyn RowStore + Sync), ctx: &ExecContext) -> Vec<f64> {
        ctx.map_reduce_rows(
            data,
            |chunk| {
                let mut out = Vec::new();
                self.predict_chunk(chunk, &mut out);
                out
            },
            Vec::new(),
            |mut acc, mut part| {
                acc.append(&mut part);
                acc
            },
        )
    }
}

impl<M: Model + Sync + ?Sized> BatchPredict for M {}

/// Batch prediction over compressed-sparse-row inputs.
///
/// Implemented by models whose scoring has a fused CSR kernel (logistic,
/// softmax, linear): the request rows never get densified, matching the
/// training-side [`SparseEstimator`] guarantee.  Predictions agree with the
/// densified twin up to floating-point summation order (the sparse kernels
/// skip zero terms) and are bit-identical across thread counts.
pub trait SparsePredictor: Model + Sync {
    /// Predict one chunk of CSR rows, appending one value per row to `out`.
    fn predict_sparse_chunk(&self, chunk: SparseRowChunk<'_>, out: &mut Vec<f64>);

    /// Predict every row of sparse `data` under `ctx`'s execution policy.
    fn predict_batch_csr(&self, data: &(dyn SparseRowStore + Sync), ctx: &ExecContext) -> Vec<f64> {
        ctx.map_reduce_sparse_rows(
            data,
            |chunk| {
                let mut out = Vec::new();
                self.predict_sparse_chunk(chunk, &mut out);
                out
            },
            Vec::new(),
            |mut acc, mut part| {
                acc.append(&mut part);
                acc
            },
        )
    }
}

/// A storage-parameterised view of [`Estimator`], blanket-implemented for
/// every estimator.
///
/// Use it to express "this function trains *on this particular store type*"
/// — e.g. accepting `&dyn Fit<Dataset, Output = M>` — where [`Estimator`]'s
/// generic `fit` cannot appear in a trait object.
pub trait Fit<S: RowStore + Sync + ?Sized> {
    /// The fitted model.
    type Output;

    /// Train on `data`; see [`Estimator::fit`].
    ///
    /// # Errors
    /// As [`Estimator::fit`].
    fn fit(&self, data: &S, labels: &[f64], ctx: &ExecContext) -> Result<Self::Output>;
}

impl<E: Estimator, S: RowStore + Sync + ?Sized> Fit<S> for E {
    type Output = E::Model;

    fn fit(&self, data: &S, labels: &[f64], ctx: &ExecContext) -> Result<E::Model> {
        Estimator::fit(self, data, labels, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_linalg::DenseMatrix;

    /// A tiny estimator/model pair exercising the trait plumbing without any
    /// numerics: the "model" memorises the column means.
    struct MeanEstimator;

    struct MeanModel {
        means: Vec<f64>,
    }

    impl UnsupervisedEstimator for MeanEstimator {
        type Model = MeanModel;

        fn fit<S: RowStore + Sync + ?Sized>(
            &self,
            data: &S,
            ctx: &ExecContext,
        ) -> Result<MeanModel> {
            let d = data.n_cols();
            let sums = ctx.map_reduce_rows(
                data,
                |chunk| {
                    let mut acc = vec![0.0; d];
                    for (_, row) in chunk.rows_with_index() {
                        for (a, v) in acc.iter_mut().zip(row) {
                            *a += v;
                        }
                    }
                    acc
                },
                vec![0.0; d],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );
            let n = data.n_rows().max(1) as f64;
            Ok(MeanModel {
                means: sums.into_iter().map(|s| s / n).collect(),
            })
        }
    }

    impl Model for MeanModel {
        fn n_features(&self) -> usize {
            self.means.len()
        }
        fn predict_row(&self, row: &[f64]) -> f64 {
            row.iter().zip(&self.means).map(|(r, m)| r - m).sum()
        }
        fn score(&self, data: &dyn RowStore, _labels: &[f64]) -> f64 {
            -self.predict_batch(data).iter().map(|p| p * p).sum::<f64>()
        }
    }

    fn sample() -> DenseMatrix {
        DenseMatrix::from_vec((0..20).map(|i| i as f64).collect(), 5, 4).unwrap()
    }

    #[test]
    fn unsupervised_estimators_train_through_the_supervised_entry_point() {
        let m = sample();
        let ctx = ExecContext::serial();
        // Once via UnsupervisedEstimator…
        let a = UnsupervisedEstimator::fit(&MeanEstimator, &m, &ctx).unwrap();
        // …once via the blanket Estimator (labels ignored).
        let b = Estimator::fit(&MeanEstimator, &m, &[], &ctx).unwrap();
        assert_eq!(a.means, b.means);
        assert_eq!(a.means, vec![8.0, 9.0, 10.0, 11.0]);
    }

    #[test]
    fn fit_is_usable_as_a_storage_specific_bound() {
        fn train_on_dense<F: Fit<DenseMatrix>>(f: &F, m: &DenseMatrix) -> Result<F::Output> {
            f.fit(m, &[], &ExecContext::serial())
        }
        let model = train_on_dense(&MeanEstimator, &sample()).unwrap();
        assert_eq!(model.n_features(), 4);
    }

    #[test]
    fn model_default_batch_prediction_loops_rows() {
        let m = sample();
        let model = UnsupervisedEstimator::fit(&MeanEstimator, &m, &ExecContext::serial()).unwrap();
        let batch = model.predict_batch(&m);
        assert_eq!(batch.len(), 5);
        for (r, p) in batch.iter().enumerate() {
            assert_eq!(*p, model.predict_row(m.row(r)));
        }
        assert!(model.score(&m, &[]) <= 0.0);
    }

    #[test]
    fn model_is_object_safe() {
        let m = sample();
        let model = UnsupervisedEstimator::fit(&MeanEstimator, &m, &ExecContext::serial()).unwrap();
        let erased: Box<dyn Model> = Box::new(model);
        assert_eq!(erased.n_features(), 4);
        assert_eq!(erased.predict_batch(&m).len(), 5);
    }
}
