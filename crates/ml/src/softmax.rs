//! Multinomial (softmax) logistic regression.
//!
//! The Infimnist workload has ten classes, so the natural classifier for the
//! paper's dataset is softmax regression rather than the binary model.  The
//! loss is the averaged cross-entropy with L2 regularisation, computed — like
//! every other loss in this workspace — in a single chunk-parallel sequential
//! sweep over a [`RowStore`], driven by the shared [`ExecContext`].

use m3_core::chunked::RowChunk;
use m3_core::sparse::{SparseRowChunk, SparseRowStore};
use m3_core::storage::RowStore;
use m3_core::{ExecContext, ParamVec};
use m3_linalg::{kernels, ops};
use m3_optim::function::{DifferentiableFunction, StochasticFunction};
use m3_optim::lbfgs::Lbfgs;
use m3_optim::termination::{OptimizationResult, TerminationCriteria};

use crate::api::{Estimator, Model, SparseEstimator};
use crate::solver::Solver;
use crate::{MlError, Result};

/// Per-class scores `w_c · row + b_c` for one dense row, written into
/// `scores` (parameter layout: `k` blocks of `d + 1`, bias last).
fn class_scores(w: &[f64], row: &[f64], n_classes: usize, scores: &mut [f64]) {
    let d = row.len();
    let stride = d + 1;
    for (c, s) in scores.iter_mut().enumerate().take(n_classes) {
        let block = &w[c * stride..c * stride + stride];
        *s = ops::dot(&block[..d], row) + block[d];
    }
}

/// Per-class scores for one sparse row (`d` must be passed since the row
/// slices do not carry it).
fn class_scores_sparse(
    w: &[f64],
    indices: &[u32],
    values: &[f64],
    d: usize,
    n_classes: usize,
    scores: &mut [f64],
) {
    let stride = d + 1;
    for (c, s) in scores.iter_mut().enumerate().take(n_classes) {
        let block = &w[c * stride..c * stride + stride];
        *s = kernels::sparse_dot(indices, values, &block[..d]) + block[d];
    }
}

/// Softmax in place with the max-subtraction trick; returns `log Σ e^s`.
fn softmax_in_place(scores: &mut [f64]) -> f64 {
    let max = scores.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    for s in scores.iter_mut() {
        *s /= sum;
    }
    max + sum.ln()
}

/// Cross-entropy loss for `k`-class softmax regression over a [`RowStore`].
///
/// Parameter layout: `k` blocks of `(d + 1)` values — the weights of class
/// `c` occupy `[c*(d+1), c*(d+1)+d)` and the class bias sits at
/// `c*(d+1)+d`.
pub struct SoftmaxLoss<'a, S: RowStore + Sync + ?Sized> {
    data: &'a S,
    labels: &'a [f64],
    n_classes: usize,
    /// L2 regularisation strength.
    pub l2: f64,
    ctx: &'a ExecContext,
}

impl<'a, S: RowStore + Sync + ?Sized> SoftmaxLoss<'a, S> {
    /// Create the loss for labels in `{0, …, n_classes−1}` (stored as `f64`),
    /// sweeping under `ctx`'s execution policy.
    pub fn new(
        data: &'a S,
        labels: &'a [f64],
        n_classes: usize,
        l2: f64,
        ctx: &'a ExecContext,
    ) -> Self {
        assert_eq!(data.n_rows(), labels.len(), "labels must match rows");
        assert!(n_classes >= 2, "softmax needs at least two classes");
        Self {
            data,
            labels,
            n_classes,
            l2,
            ctx,
        }
    }

    fn n_features(&self) -> usize {
        self.data.n_cols()
    }

    /// Contribution of the rows in one chunk to (loss, gradient).
    ///
    /// `scores` is per-worker scratch (resized to `k`) reused across every
    /// chunk the worker processes; the per-class dot products and residual
    /// axpys inside run on the dispatched SIMD kernels.
    fn chunk_loss_grad(
        &self,
        w: &[f64],
        chunk: &m3_core::chunked::RowChunk<'_>,
        scores: &mut Vec<f64>,
    ) -> (f64, Vec<f64>) {
        let d = self.n_features();
        let k = self.n_classes;
        let stride = d + 1;
        let mut grad = vec![0.0; k * stride];
        scores.clear();
        scores.resize(k, 0.0);
        let mut loss = 0.0;
        for (i, row) in chunk.data.chunks_exact(d).enumerate() {
            let label = self.labels[chunk.start_row + i] as usize;
            class_scores(w, row, k, scores);
            let label_score = scores[label.min(k - 1)];
            let log_norm = softmax_in_place(scores);
            loss += log_norm - label_score;
            for c in 0..k {
                let residual = scores[c] - if c == label { 1.0 } else { 0.0 };
                let g = &mut grad[c * stride..(c + 1) * stride];
                ops::axpy(residual, row, &mut g[..d]);
                g[d] += residual;
            }
        }
        (loss, grad)
    }
}

impl<S: RowStore + Sync + ?Sized> DifferentiableFunction for SoftmaxLoss<'_, S> {
    fn dimension(&self) -> usize {
        self.n_classes * (self.n_features() + 1)
    }

    fn value(&self, w: &[f64]) -> f64 {
        let mut grad = vec![0.0; self.dimension()];
        self.value_and_gradient(w, &mut grad)
    }

    fn gradient(&self, w: &[f64], grad: &mut [f64]) {
        self.value_and_gradient(w, grad);
    }

    fn value_and_gradient(&self, w: &[f64], grad: &mut [f64]) -> f64 {
        let n = self.data.n_rows();
        let d = self.n_features();
        let k = self.n_classes;
        let stride = d + 1;
        if n == 0 {
            grad.fill(0.0);
            return 0.0;
        }
        let (loss, partial) = self.ctx.map_reduce_rows_scratch(
            self.data,
            Vec::new,
            |scores, chunk| self.chunk_loss_grad(w, &chunk, scores),
            (0.0, vec![0.0; k * stride]),
            |(la, mut ga), (lb, gb)| {
                ops::add_assign(&mut ga, &gb);
                (la + lb, ga)
            },
        );
        let inv_n = 1.0 / n as f64;
        for (gi, pi) in grad.iter_mut().zip(&partial) {
            *gi = pi * inv_n;
        }
        // Regularise weights (not biases) and accumulate the penalty.
        let mut reg = 0.0;
        for c in 0..k {
            let ws = &w[c * stride..c * stride + d];
            reg += ops::dot(ws, ws);
            ops::axpy(self.l2, ws, &mut grad[c * stride..c * stride + d]);
        }
        loss * inv_n + 0.5 * self.l2 * reg
    }
}

impl<S: RowStore + Sync + ?Sized> StochasticFunction for SoftmaxLoss<'_, S> {
    fn n_examples(&self) -> usize {
        self.data.n_rows()
    }

    fn batch_value_and_gradient(&self, w: &[f64], examples: &[usize], grad: &mut [f64]) -> f64 {
        let d = self.n_features();
        let k = self.n_classes;
        let stride = d + 1;
        grad.fill(0.0);
        if examples.is_empty() {
            return 0.0;
        }
        let mut scores = vec![0.0; k];
        let mut loss = 0.0;
        for &i in examples {
            let row = self.data.row(i);
            let label = self.labels[i] as usize;
            class_scores(w, row, k, &mut scores);
            let label_score = scores[label.min(k - 1)];
            let log_norm = softmax_in_place(&mut scores);
            loss += log_norm - label_score;
            for c in 0..k {
                let residual = scores[c] - if c == label { 1.0 } else { 0.0 };
                let g = &mut grad[c * stride..(c + 1) * stride];
                ops::axpy(residual, row, &mut g[..d]);
                g[d] += residual;
            }
        }
        let inv = 1.0 / examples.len() as f64;
        ops::scale(inv, grad);
        let mut reg = 0.0;
        for c in 0..k {
            let ws = &w[c * stride..c * stride + d];
            reg += ops::dot(ws, ws);
            ops::axpy(self.l2, ws, &mut grad[c * stride..c * stride + d]);
        }
        loss * inv + 0.5 * self.l2 * reg
    }

    fn batch_range_value_and_gradient(
        &self,
        w: &[f64],
        examples: std::ops::Range<usize>,
        grad: &mut [f64],
    ) -> f64 {
        let d = self.n_features();
        let k = self.n_classes;
        let stride = d + 1;
        grad.fill(0.0);
        if examples.is_empty() {
            return 0.0;
        }
        let chunk = RowChunk {
            start_row: examples.start,
            end_row: examples.end,
            data: self.data.rows_slice(examples.start, examples.end),
            n_cols: d,
        };
        let (loss, partial) =
            crate::solver::with_scores(|scores| self.chunk_loss_grad(w, &chunk, scores));
        let inv = 1.0 / chunk.n_rows() as f64;
        for (gi, pi) in grad.iter_mut().zip(&partial) {
            *gi = pi * inv;
        }
        let mut reg = 0.0;
        for c in 0..k {
            let ws = &w[c * stride..c * stride + d];
            reg += ops::dot(ws, ws);
            ops::axpy(self.l2, ws, &mut grad[c * stride..c * stride + d]);
        }
        loss * inv + 0.5 * self.l2 * reg
    }
}

/// Cross-entropy loss for `k`-class softmax regression over a
/// [`SparseRowStore`] — the CSR twin of [`SoftmaxLoss`], same parameter
/// layout.  Per-row work is proportional to the row's stored entries: the
/// per-class scores come from [`kernels::sparse_dot`] and the residual
/// updates from [`kernels::scatter_axpy`].
pub struct SparseSoftmaxLoss<'a, S: SparseRowStore + Sync + ?Sized> {
    data: &'a S,
    labels: &'a [f64],
    n_classes: usize,
    /// L2 regularisation strength.
    pub l2: f64,
    ctx: &'a ExecContext,
}

impl<'a, S: SparseRowStore + Sync + ?Sized> SparseSoftmaxLoss<'a, S> {
    /// Create the loss for labels in `{0, …, n_classes−1}` (stored as
    /// `f64`), sweeping under `ctx`'s execution policy.
    pub fn new(
        data: &'a S,
        labels: &'a [f64],
        n_classes: usize,
        l2: f64,
        ctx: &'a ExecContext,
    ) -> Self {
        assert_eq!(data.n_rows(), labels.len(), "labels must match rows");
        assert!(n_classes >= 2, "softmax needs at least two classes");
        Self {
            data,
            labels,
            n_classes,
            l2,
            ctx,
        }
    }

    fn n_features(&self) -> usize {
        self.data.n_cols()
    }

    /// Contribution of one sparse chunk to (loss, gradient).
    fn chunk_loss_grad(
        &self,
        w: &[f64],
        chunk: &m3_core::sparse::SparseRowChunk<'_>,
        scores: &mut Vec<f64>,
    ) -> (f64, Vec<f64>) {
        let d = self.n_features();
        let k = self.n_classes;
        let stride = d + 1;
        let mut grad = vec![0.0; k * stride];
        scores.clear();
        scores.resize(k, 0.0);
        let mut loss = 0.0;
        for (r, indices, values) in chunk.rows_with_index() {
            let label = self.labels[r] as usize;
            class_scores_sparse(w, indices, values, d, k, scores);
            let label_score = scores[label.min(k - 1)];
            let log_norm = softmax_in_place(scores);
            loss += log_norm - label_score;
            for c in 0..k {
                let residual = scores[c] - if c == label { 1.0 } else { 0.0 };
                let g = &mut grad[c * stride..(c + 1) * stride];
                kernels::scatter_axpy(residual, indices, values, &mut g[..d]);
                g[d] += residual;
            }
        }
        (loss, grad)
    }
}

impl<S: SparseRowStore + Sync + ?Sized> DifferentiableFunction for SparseSoftmaxLoss<'_, S> {
    fn dimension(&self) -> usize {
        self.n_classes * (self.n_features() + 1)
    }

    fn value(&self, w: &[f64]) -> f64 {
        let mut grad = vec![0.0; self.dimension()];
        self.value_and_gradient(w, &mut grad)
    }

    fn gradient(&self, w: &[f64], grad: &mut [f64]) {
        self.value_and_gradient(w, grad);
    }

    fn value_and_gradient(&self, w: &[f64], grad: &mut [f64]) -> f64 {
        let n = self.data.n_rows();
        let d = self.n_features();
        let k = self.n_classes;
        let stride = d + 1;
        if n == 0 {
            grad.fill(0.0);
            return 0.0;
        }
        let (loss, partial) = self.ctx.map_reduce_sparse_rows_scratch(
            self.data,
            Vec::new,
            |scores, chunk| self.chunk_loss_grad(w, &chunk, scores),
            (0.0, vec![0.0; k * stride]),
            |(la, mut ga), (lb, gb)| {
                ops::add_assign(&mut ga, &gb);
                (la + lb, ga)
            },
        );
        let inv_n = 1.0 / n as f64;
        for (gi, pi) in grad.iter_mut().zip(&partial) {
            *gi = pi * inv_n;
        }
        // Regularise weights (not biases) and accumulate the penalty.
        let mut reg = 0.0;
        for c in 0..k {
            let ws = &w[c * stride..c * stride + d];
            reg += ops::dot(ws, ws);
            ops::axpy(self.l2, ws, &mut grad[c * stride..c * stride + d]);
        }
        loss * inv_n + 0.5 * self.l2 * reg
    }
}

impl<S: SparseRowStore + Sync + ?Sized> StochasticFunction for SparseSoftmaxLoss<'_, S> {
    fn n_examples(&self) -> usize {
        self.data.n_rows()
    }

    fn batch_value_and_gradient(&self, w: &[f64], examples: &[usize], grad: &mut [f64]) -> f64 {
        let d = self.n_features();
        let k = self.n_classes;
        let stride = d + 1;
        grad.fill(0.0);
        if examples.is_empty() {
            return 0.0;
        }
        let indptr = self.data.indptr();
        let col_indices = self.data.indices();
        let vals = self.data.values();
        let mut scores = vec![0.0; k];
        let mut loss = 0.0;
        for &i in examples {
            let (lo, hi) = (indptr[i] as usize, indptr[i + 1] as usize);
            let (row_idx, row_vals) = (&col_indices[lo..hi], &vals[lo..hi]);
            let label = self.labels[i] as usize;
            class_scores_sparse(w, row_idx, row_vals, d, k, &mut scores);
            let label_score = scores[label.min(k - 1)];
            let log_norm = softmax_in_place(&mut scores);
            loss += log_norm - label_score;
            for c in 0..k {
                let residual = scores[c] - if c == label { 1.0 } else { 0.0 };
                let g = &mut grad[c * stride..(c + 1) * stride];
                kernels::scatter_axpy(residual, row_idx, row_vals, &mut g[..d]);
                g[d] += residual;
            }
        }
        let inv = 1.0 / examples.len() as f64;
        ops::scale(inv, grad);
        let mut reg = 0.0;
        for c in 0..k {
            let ws = &w[c * stride..c * stride + d];
            reg += ops::dot(ws, ws);
            ops::axpy(self.l2, ws, &mut grad[c * stride..c * stride + d]);
        }
        loss * inv + 0.5 * self.l2 * reg
    }

    fn batch_range_value_and_gradient(
        &self,
        w: &[f64],
        examples: std::ops::Range<usize>,
        grad: &mut [f64],
    ) -> f64 {
        let d = self.n_features();
        let k = self.n_classes;
        let stride = d + 1;
        grad.fill(0.0);
        if examples.is_empty() {
            return 0.0;
        }
        let chunk = self.data.sparse_chunk(examples.start, examples.end);
        let (loss, partial) =
            crate::solver::with_scores(|scores| self.chunk_loss_grad(w, &chunk, scores));
        let inv = 1.0 / chunk.n_rows() as f64;
        for (gi, pi) in grad.iter_mut().zip(&partial) {
            *gi = pi * inv;
        }
        let mut reg = 0.0;
        for c in 0..k {
            let ws = &w[c * stride..c * stride + d];
            reg += ops::dot(ws, ws);
            ops::axpy(self.l2, ws, &mut grad[c * stride..c * stride + d]);
        }
        loss * inv + 0.5 * self.l2 * reg
    }
}

/// Hyper-parameters for [`SoftmaxRegression`].
#[derive(Debug, Clone, PartialEq)]
pub struct SoftmaxConfig {
    /// Number of classes.
    pub n_classes: usize,
    /// L2 regularisation strength.
    pub l2: f64,
    /// Maximum L-BFGS iterations.
    pub max_iterations: usize,
    /// Run exactly `max_iterations` iterations (the paper's protocol).
    pub fixed_iterations: bool,
    /// Legacy worker-thread count (`0` = all hardware threads), honoured only
    /// by the deprecated inherent [`SoftmaxRegression::fit`] shim.
    pub n_threads: usize,
    /// Which optimiser runs: full-batch L-BFGS (default, the paper's
    /// protocol) or mini-batch [`Solver::Sgd`].
    pub solver: Solver,
}

impl Default for SoftmaxConfig {
    fn default() -> Self {
        Self {
            n_classes: 10,
            l2: 1e-4,
            max_iterations: 50,
            fixed_iterations: false,
            n_threads: 0,
            solver: Solver::Lbfgs,
        }
    }
}

impl SoftmaxConfig {
    /// The paper's protocol: 10 L-BFGS iterations over 10 classes.
    pub fn paper() -> Self {
        Self {
            max_iterations: 10,
            fixed_iterations: true,
            ..Self::default()
        }
    }
}

/// Multinomial softmax-regression trainer.
#[derive(Debug, Clone, Default)]
pub struct SoftmaxRegression {
    config: SoftmaxConfig,
}

impl SoftmaxRegression {
    /// Create a trainer with the given configuration.
    pub fn new(config: SoftmaxConfig) -> Self {
        Self { config }
    }

    /// Train on `data` with integer class labels (stored as `f64`).
    ///
    /// # Errors
    /// Fails when shapes disagree, data is empty, or labels fall outside
    /// `0..n_classes`.
    #[deprecated(
        since = "0.1.0",
        note = "use `Estimator::fit(&self, data, labels, &ExecContext)` instead"
    )]
    pub fn fit<S: RowStore + Sync + ?Sized>(
        &self,
        data: &S,
        labels: &[f64],
    ) -> Result<SoftmaxModel> {
        Estimator::fit(
            self,
            data,
            labels,
            &ExecContext::new().with_threads(self.config.n_threads),
        )
    }
}

impl SoftmaxRegression {
    /// Shared validation for the dense and sparse fit paths.
    fn validate(&self, n_rows: usize, n_cols: usize, labels: &[f64]) -> Result<()> {
        if n_rows == 0 || n_cols == 0 {
            return Err(MlError::InvalidData("training data is empty".to_string()));
        }
        if n_rows != labels.len() {
            return Err(MlError::ShapeMismatch {
                expected: format!("{n_rows} labels"),
                found: format!("{} labels", labels.len()),
            });
        }
        let k = self.config.n_classes;
        if labels
            .iter()
            .any(|&l| l < 0.0 || l >= k as f64 || l.fract() != 0.0)
        {
            return Err(MlError::InvalidData(format!(
                "labels must be integers in 0..{k}"
            )));
        }
        Ok(())
    }

    /// Run the configured solver on any softmax objective and wrap the
    /// optimum — shared by the dense and sparse fit paths.
    fn solve(
        &self,
        loss: &(impl StochasticFunction + Sync),
        n_features: usize,
        ctx: &ExecContext,
    ) -> Result<SoftmaxModel> {
        let result = match &self.config.solver {
            Solver::Lbfgs => {
                let optimizer = if self.config.fixed_iterations {
                    Lbfgs::with_fixed_iterations(self.config.max_iterations)
                } else {
                    Lbfgs::new().criteria(TerminationCriteria {
                        max_iterations: self.config.max_iterations,
                        ..Default::default()
                    })
                };
                let initial = vec![0.0; loss.dimension()];
                let result = optimizer.run(loss, initial);
                if result.weights.iter().any(|w| !w.is_finite()) {
                    return Err(MlError::OptimizationFailed(format!(
                        "L-BFGS terminated with {:?}",
                        result.reason
                    )));
                }
                result
            }
            Solver::Sgd(sgd) => crate::solver::run_sgd(sgd, loss, loss.dimension(), ctx)?,
        };
        Ok(SoftmaxModel {
            weights: result.weights.clone().into(),
            n_classes: self.config.n_classes,
            n_features,
            optimization: result,
        })
    }
}

impl Estimator for SoftmaxRegression {
    type Model = SoftmaxModel;

    fn fit<S: RowStore + Sync + ?Sized>(
        &self,
        data: &S,
        labels: &[f64],
        ctx: &ExecContext,
    ) -> Result<SoftmaxModel> {
        self.validate(data.n_rows(), data.n_cols(), labels)?;
        let loss = SoftmaxLoss::new(data, labels, self.config.n_classes, self.config.l2, ctx);
        self.solve(&loss, data.n_cols(), ctx)
    }
}

impl SparseEstimator for SoftmaxRegression {
    fn fit_sparse<S: SparseRowStore + Sync + ?Sized>(
        &self,
        data: &S,
        labels: &[f64],
        ctx: &ExecContext,
    ) -> Result<SoftmaxModel> {
        self.validate(data.n_rows(), data.n_cols(), labels)?;
        let loss = SparseSoftmaxLoss::new(data, labels, self.config.n_classes, self.config.l2, ctx);
        self.solve(&loss, data.n_cols(), ctx)
    }
}

/// A trained softmax-regression model.
///
/// The packed parameters live in a [`ParamVec`]: owned after training, or a
/// zero-copy view into a memory-mapped artifact after [`SoftmaxModel::load`].
#[derive(Debug, Clone)]
pub struct SoftmaxModel {
    /// Packed parameters (`n_classes` blocks of `n_features + 1`).
    pub weights: ParamVec,
    /// Number of classes.
    pub n_classes: usize,
    /// Number of features.
    pub n_features: usize,
    /// Statistics of the training run.  Synthetic (empty) for models loaded
    /// from an artifact.
    pub optimization: OptimizationResult,
}

impl SoftmaxModel {
    /// Per-class probabilities for a single row.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.n_features, "feature count mismatch");
        let mut scores = vec![0.0; self.n_classes];
        class_scores(&self.weights, row, self.n_classes, &mut scores);
        softmax_in_place(&mut scores);
        scores
    }

    /// Most probable class for a single row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let probs = self.predict_proba_row(row);
        ops::argmax(&probs).map(|(i, _)| i as f64).unwrap_or(0.0)
    }

    /// Predicted classes for every row of `data`.
    pub fn predict<S: RowStore + ?Sized>(&self, data: &S) -> Vec<f64> {
        (0..data.n_rows())
            .map(|r| self.predict_row(data.row(r)))
            .collect()
    }

    /// Classification accuracy over `data`.
    pub fn accuracy<S: RowStore + ?Sized>(&self, data: &S, labels: &[f64]) -> f64 {
        crate::metrics::accuracy(&self.predict(data), labels)
    }
}

impl Model for SoftmaxModel {
    fn n_features(&self) -> usize {
        self.n_features
    }

    fn predict_row(&self, row: &[f64]) -> f64 {
        SoftmaxModel::predict_row(self, row)
    }

    /// Chunked prediction with one reused score buffer (the per-row API
    /// allocates a fresh probability vector per call).  Softmax is strictly
    /// monotonic, so taking the argmax before normalisation returns exactly
    /// the per-row result, ties included.
    fn predict_chunk(&self, chunk: RowChunk<'_>, out: &mut Vec<f64>) {
        let mut scores = vec![0.0; self.n_classes];
        out.reserve(chunk.n_rows());
        for row in chunk.data.chunks_exact(self.n_features.max(1)) {
            class_scores(&self.weights, row, self.n_classes, &mut scores);
            out.push(ops::argmax(&scores).map(|(i, _)| i as f64).unwrap_or(0.0));
        }
    }

    fn score(&self, data: &dyn RowStore, labels: &[f64]) -> f64 {
        self.accuracy(data, labels)
    }
}

impl crate::api::SparsePredictor for SoftmaxModel {
    fn predict_sparse_chunk(&self, chunk: SparseRowChunk<'_>, out: &mut Vec<f64>) {
        let mut scores = vec![0.0; self.n_classes];
        out.reserve(chunk.n_rows());
        for (_, indices, values) in chunk.rows_with_index() {
            class_scores_sparse(
                &self.weights,
                indices,
                values,
                self.n_features,
                self.n_classes,
                &mut scores,
            );
            out.push(ops::argmax(&scores).map(|(i, _)| i as f64).unwrap_or(0.0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_data::{GaussianBlobs, InfimnistLike, RowGenerator};
    use m3_optim::function::gradient_check;

    #[test]
    fn gradient_matches_numerical() {
        let (x, y) = GaussianBlobs::new(3, 4, 5.0, 1.0, 2).materialize(45);
        let ctx = ExecContext::new().with_threads(2);
        let loss = SoftmaxLoss::new(&x, &y, 3, 0.01, &ctx);
        let w: Vec<f64> = (0..loss.dimension())
            .map(|i| (i as f64 * 0.07).sin() * 0.1)
            .collect();
        let err = gradient_check(&loss, &w, 1e-5);
        assert!(err < 1e-6, "gradient error {err}");
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        let (x, y) = GaussianBlobs::new(4, 6, 5.0, 1.0, 5).materialize(80);
        let w: Vec<f64> = (0..4 * 7).map(|i| 0.01 * i as f64).collect();
        let mut gs = vec![0.0; w.len()];
        let mut gp = vec![0.0; w.len()];
        let serial_ctx = ExecContext::serial().with_chunk_bytes(m3_core::PAGE_SIZE);
        let parallel_ctx = ExecContext::new()
            .with_threads(4)
            .with_chunk_bytes(m3_core::PAGE_SIZE)
            .with_parallel_threshold(0); // force the pool even at test scale
        let vs = SoftmaxLoss::new(&x, &y, 4, 0.0, &serial_ctx).value_and_gradient(&w, &mut gs);
        let vp = SoftmaxLoss::new(&x, &y, 4, 0.0, &parallel_ctx).value_and_gradient(&w, &mut gp);
        assert_eq!(vs.to_bits(), vp.to_bits());
        for (a, b) in gs.iter().zip(&gp) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fits_well_separated_blobs() {
        let (x, y) = GaussianBlobs::new(4, 5, 10.0, 0.8, 9).materialize(400);
        let trainer = SoftmaxRegression::new(SoftmaxConfig {
            n_classes: 4,
            max_iterations: 60,
            ..Default::default()
        });
        let model = Estimator::fit(&trainer, &x, &y, &ExecContext::new()).unwrap();
        assert!(model.accuracy(&x, &y) > 0.95);
        // Probabilities sum to one.
        let probs = model.predict_proba_row(x.row(0));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn classifies_infimnist_like_digits_above_chance() {
        let generator = InfimnistLike::new(5);
        let (x, y) = generator.materialize(600);
        let trainer = SoftmaxRegression::new(SoftmaxConfig {
            n_classes: 10,
            max_iterations: 30,
            ..Default::default()
        });
        let model = Estimator::fit(&trainer, &x, &y, &ExecContext::new().with_threads(2)).unwrap();
        let acc = model.accuracy(&x, &y);
        assert!(
            acc > 0.6,
            "training accuracy {acc} should beat chance (0.1) comfortably"
        );
    }

    #[test]
    fn paper_protocol_runs_ten_iterations() {
        let (x, y) = GaussianBlobs::new(10, 8, 10.0, 1.5, 3).materialize(300);
        let trainer = SoftmaxRegression::new(SoftmaxConfig::paper());
        let model = Estimator::fit(&trainer, &x, &y, &ExecContext::new()).unwrap();
        assert_eq!(model.optimization.iterations, 10);
    }

    #[test]
    fn deprecated_inherent_fit_matches_trait_fit() {
        let (x, y) = GaussianBlobs::new(3, 4, 8.0, 1.0, 17).materialize(90);
        let trainer = SoftmaxRegression::new(SoftmaxConfig {
            n_classes: 3,
            max_iterations: 10,
            ..Default::default()
        });
        #[allow(deprecated)]
        let old = SoftmaxRegression::fit(&trainer, &x, &y).unwrap();
        let new = Estimator::fit(&trainer, &x, &y, &ExecContext::new()).unwrap();
        assert!(ops::approx_eq(&old.weights, &new.weights, 1e-12));
    }

    /// Blobs with most entries zeroed, as CSR + densified twin.
    fn sparse_blobs(n: usize) -> (m3_linalg::CsrMatrix, m3_linalg::DenseMatrix, Vec<f64>) {
        let (x, y) = GaussianBlobs::new(3, 6, 8.0, 1.0, 21).materialize(n);
        let mut data = x.as_slice().to_vec();
        for (i, v) in data.iter_mut().enumerate() {
            if (i * 2654435761) % 4 != 0 {
                *v = 0.0;
            }
        }
        let dense = m3_linalg::DenseMatrix::from_vec(data, x.n_rows(), x.n_cols()).unwrap();
        (m3_linalg::CsrMatrix::from_dense(&dense), dense, y)
    }

    #[test]
    fn sparse_gradient_matches_numerical() {
        let (csr, _, y) = sparse_blobs(45);
        let ctx = ExecContext::new().with_threads(2);
        let loss = SparseSoftmaxLoss::new(&csr, &y, 3, 0.01, &ctx);
        let w: Vec<f64> = (0..loss.dimension())
            .map(|i| (i as f64 * 0.07).sin() * 0.1)
            .collect();
        let err = gradient_check(&loss, &w, 1e-5);
        assert!(err < 1e-6, "gradient error {err}");
    }

    #[test]
    fn sparse_loss_agrees_with_dense_loss() {
        let (csr, dense, y) = sparse_blobs(80);
        let ctx = ExecContext::serial();
        let w: Vec<f64> = (0..3 * 7).map(|i| 0.01 * i as f64 - 0.1).collect();
        let mut gs = vec![0.0; w.len()];
        let mut gd = vec![0.0; w.len()];
        let vs = SparseSoftmaxLoss::new(&csr, &y, 3, 0.01, &ctx).value_and_gradient(&w, &mut gs);
        let vd = SoftmaxLoss::new(&dense, &y, 3, 0.01, &ctx).value_and_gradient(&w, &mut gd);
        assert!((vs - vd).abs() <= 1e-12 * (1.0 + vd.abs()));
        for (a, b) in gs.iter().zip(&gd) {
            assert!((a - b).abs() <= 1e-12 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn sparse_fit_is_bit_identical_across_thread_counts() {
        let (csr, _, y) = sparse_blobs(120);
        let trainer = SoftmaxRegression::new(SoftmaxConfig {
            n_classes: 3,
            max_iterations: 12,
            ..Default::default()
        });
        let run = |threads: usize| {
            trainer
                .fit_sparse(
                    &csr,
                    &y,
                    &ExecContext::new()
                        .with_threads(threads)
                        .with_chunk_bytes(m3_core::PAGE_SIZE)
                        .with_parallel_threshold(0),
                )
                .unwrap()
        };
        let one = run(1);
        for threads in [2, 4] {
            let multi = run(threads);
            for (a, b) in one.weights.iter().zip(&multi.weights) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // And the model itself is usable.
        assert!(one.accuracy(&csr.to_dense(), &y) > 0.5);
    }

    #[test]
    fn validation_errors() {
        let (x, y) = GaussianBlobs::new(3, 3, 5.0, 1.0, 1).materialize(30);
        let trainer = SoftmaxRegression::new(SoftmaxConfig {
            n_classes: 3,
            ..Default::default()
        });
        let ctx = ExecContext::new();
        assert!(Estimator::fit(&trainer, &x, &y[..10], &ctx).is_err());
        let bad = vec![7.0; 30];
        assert!(Estimator::fit(&trainer, &x, &bad, &ctx).is_err());
        let empty = m3_linalg::DenseMatrix::zeros(0, 3);
        assert!(Estimator::fit(&trainer, &empty, &[], &ctx).is_err());
    }

    #[test]
    fn stochastic_interface_reduces_loss() {
        let (x, y) = GaussianBlobs::new(3, 4, 8.0, 1.0, 11).materialize(150);
        let ctx = ExecContext::serial();
        let loss = SoftmaxLoss::new(&x, &y, 3, 1e-4, &ctx);
        let w0 = vec![0.0; loss.dimension()];
        let initial = loss.value(&w0);
        let result = m3_optim::sgd::Sgd::new()
            .learning_rate(0.3)
            .epochs(40)
            .run(&loss, w0)
            .unwrap();
        assert!(result.value < initial * 0.5);
    }

    #[test]
    fn sgd_solver_trains_dense_and_sparse_models() {
        let (csr, dense, y) = sparse_blobs(300);
        let trainer = SoftmaxRegression::new(SoftmaxConfig {
            n_classes: 3,
            solver: Solver::Sgd(
                m3_optim::AsyncSgd::new()
                    .learning_rate(0.3)
                    .epochs(40)
                    .batch_size(32)
                    .seed(7),
            ),
            ..Default::default()
        });
        let ctx = ExecContext::new().with_threads(2);
        let dense_model = Estimator::fit(&trainer, &dense, &y, &ctx).unwrap();
        let sparse_model = trainer.fit_sparse(&csr, &y, &ctx).unwrap();
        assert!(dense_model.accuracy(&dense, &y) > 0.8);
        // Same deterministic batch schedule on both layouts.
        for (a, b) in dense_model.weights.iter().zip(&sparse_model.weights) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }

    #[test]
    fn hogwild_sgd_solver_fits_blobs() {
        let (x, y) = GaussianBlobs::new(4, 5, 10.0, 0.8, 9).materialize(400);
        let trainer = SoftmaxRegression::new(SoftmaxConfig {
            n_classes: 4,
            solver: Solver::Sgd(
                m3_optim::AsyncSgd::new()
                    .learning_rate(0.3)
                    .epochs(30)
                    .batch_size(16)
                    .mode(m3_optim::UpdateMode::Hogwild)
                    .seed(13),
            ),
            ..Default::default()
        });
        let model = Estimator::fit(&trainer, &x, &y, &ExecContext::new().with_threads(4)).unwrap();
        assert!(model.accuracy(&x, &y) > 0.9);
    }
}
