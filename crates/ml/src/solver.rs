//! Solver selection shared by the loss-minimising estimators.
//!
//! Logistic, softmax and linear regression all minimise a smooth convex loss,
//! so they share one choice: the full-batch **L-BFGS** protocol the paper
//! evaluates, or the mini-batch **SGD** path built on
//! [`m3_optim::AsyncSgd`].  The [`Solver`] enum carries that choice inside
//! each estimator's config; the determinism contract follows the SGD
//! driver's [`m3_optim::UpdateMode`] — `Deterministic` keeps the workspace's
//! bit-identical guarantee, `Hogwild` trades it for wall clock.

use m3_core::ExecContext;
use m3_optim::{AsyncSgd, OptimizationResult, StochasticFunction};

use crate::{MlError, Result};

/// Which optimiser a loss-minimising estimator runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Solver {
    /// Full-batch L-BFGS (the paper's protocol; bit-deterministic).
    #[default]
    Lbfgs,
    /// Mini-batch SGD with the given [`AsyncSgd`] configuration.
    /// Deterministic mode stays bit-identical across thread counts; Hogwild
    /// mode is fast but stochastic (see `m3_optim::async_sgd`).
    Sgd(AsyncSgd),
}

/// Run `sgd` on `loss` from zero and surface divergence as a typed error —
/// the SGD counterpart of each estimator's L-BFGS `solve` arm, shared so all
/// three estimators enforce the same protocol.  The [`AsyncSgd`] config's
/// `checkpoint`/`resume` fields plumb straight through, so any estimator's
/// `Solver::Sgd` path checkpoints and resumes (see `m3_optim::checkpoint`).
pub(crate) fn run_sgd<F: StochasticFunction + Sync + ?Sized>(
    sgd: &AsyncSgd,
    loss: &F,
    dim: usize,
    ctx: &ExecContext,
) -> Result<OptimizationResult> {
    let result = sgd.run(loss, vec![0.0; dim], ctx).map_err(MlError::Optim)?;
    if !result.converged() || result.weights.iter().any(|w| !w.is_finite()) {
        return Err(MlError::OptimizationFailed(format!(
            "SGD terminated with {:?}",
            result.reason
        )));
    }
    Ok(result)
}

thread_local! {
    /// Per-thread score/residual scratch for the fused mini-batch kernels.
    /// SGD calls a batch gradient thousands of times per epoch on each
    /// executor; this keeps that hot path allocation-free without widening
    /// the `StochasticFunction` signature with a scratch parameter.
    static BATCH_SCRATCH: std::cell::RefCell<Vec<f64>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Hand the calling thread's batch scratch buffer to `f`.  Not re-entrant:
/// `f` must not call `with_scores` itself (the losses' batch methods never
/// nest).
pub(crate) fn with_scores<R>(f: impl FnOnce(&mut Vec<f64>) -> R) -> R {
    BATCH_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_solver_is_lbfgs() {
        assert_eq!(Solver::default(), Solver::Lbfgs);
    }

    #[test]
    fn solver_carries_sgd_configuration() {
        let solver = Solver::Sgd(AsyncSgd::new().epochs(3));
        match solver {
            Solver::Sgd(cfg) => assert_eq!(cfg.epochs, 3),
            Solver::Lbfgs => panic!("expected the SGD variant"),
        }
    }
}
