//! Feature preprocessing that works over out-of-core data.
//!
//! A standardiser over a 190 GB memory-mapped dataset cannot materialise the
//! transformed matrix; instead [`StandardScaler`] is fitted with one
//! streaming sweep (producing a [`Standardizer`]) and then applied lazily,
//! row by row, as algorithms pull data.

use m3_core::storage::RowStore;
use m3_core::{ExecContext, ParamVec};
use m3_linalg::stats::RunningStats;
use m3_linalg::DenseMatrix;

use crate::api::UnsupervisedEstimator;
use crate::{MlError, Result};

/// Z-score standardisation estimator.
///
/// Fitting sweeps the store once (chunk-parallel, merging Welford-style
/// running statistics) and yields a [`Standardizer`] holding the per-feature
/// means and standard deviations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StandardScaler;

impl StandardScaler {
    /// Create a scaler estimator.
    pub fn new() -> Self {
        Self
    }
}

impl UnsupervisedEstimator for StandardScaler {
    type Model = Standardizer;

    fn fit<S: RowStore + Sync + ?Sized>(
        &self,
        data: &S,
        ctx: &ExecContext,
    ) -> Result<Standardizer> {
        if data.n_rows() == 0 || data.n_cols() == 0 {
            return Err(MlError::InvalidData(
                "cannot fit a standardizer on an empty store".into(),
            ));
        }
        let d = data.n_cols();
        let stats = ctx.map_reduce_rows(
            data,
            |chunk| {
                let mut acc = RunningStats::new(d);
                for row in chunk.data.chunks_exact(d) {
                    acc.push_row(row);
                }
                acc
            },
            RunningStats::new(d),
            |mut a, b| {
                a.merge(&b);
                a
            },
        );
        Ok(Standardizer {
            mean: stats.mean().to_vec().into(),
            std_dev: stats.std_dev().into(),
        })
    }
}

/// Fitted z-score standardisation: the model produced by [`StandardScaler`].
///
/// The statistics live in [`ParamVec`]s: owned after fitting, or zero-copy
/// views into a memory-mapped artifact after [`Standardizer::load`].
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    /// Per-feature means.
    pub mean: ParamVec,
    /// Per-feature standard deviations (zero-variance columns keep 0).
    pub std_dev: ParamVec,
}

impl Standardizer {
    /// Fit means and standard deviations with a chunk-parallel sweep.
    ///
    /// # Errors
    /// Fails when the data has no rows.
    #[deprecated(
        since = "0.1.0",
        note = "use `UnsupervisedEstimator::fit(&StandardScaler, data, &ExecContext)` instead"
    )]
    pub fn fit<S: RowStore + Sync + ?Sized>(data: &S, n_threads: usize) -> Result<Self> {
        UnsupervisedEstimator::fit(
            &StandardScaler,
            data,
            &ExecContext::new().with_threads(n_threads),
        )
    }

    /// Number of features this standardiser was fitted on.
    pub fn n_features(&self) -> usize {
        self.mean.len()
    }

    /// Standardise a single row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        m3_linalg::stats::standardize_row_with(&self.mean, &self.std_dev, row);
    }

    /// Materialise the standardised copy of an entire store (only sensible
    /// for data that fits in memory, e.g. a test split).
    pub fn transform_to_matrix<S: RowStore + ?Sized>(&self, data: &S) -> DenseMatrix {
        let d = data.n_cols();
        let mut out = vec![0.0; data.n_rows() * d];
        for r in 0..data.n_rows() {
            let dst = &mut out[r * d..(r + 1) * d];
            dst.copy_from_slice(data.row(r));
            self.transform_row(dst);
        }
        DenseMatrix::from_vec(out, data.n_rows(), d).expect("shape preserved")
    }
}

/// Copy a store into an owned matrix with a constant `1.0` column appended —
/// the explicit-bias formulation some texts use.  Provided for completeness;
/// the built-in models carry their bias separately instead.
pub fn append_bias_column<S: RowStore + ?Sized>(data: &S) -> DenseMatrix {
    let d = data.n_cols();
    let mut out = vec![0.0; data.n_rows() * (d + 1)];
    for r in 0..data.n_rows() {
        let dst = &mut out[r * (d + 1)..(r + 1) * (d + 1)];
        dst[..d].copy_from_slice(data.row(r));
        dst[d] = 1.0;
    }
    DenseMatrix::from_vec(out, data.n_rows(), d + 1).expect("shape preserved")
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_linalg::stats::ColumnStats;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 100.0], &[2.0, 200.0], &[3.0, 300.0], &[4.0, 400.0]])
            .unwrap()
    }

    fn fit(m: &DenseMatrix, ctx: &ExecContext) -> Standardizer {
        UnsupervisedEstimator::fit(&StandardScaler, m, ctx).unwrap()
    }

    #[test]
    fn fit_matches_batch_statistics() {
        let m = sample();
        let s = fit(&m, &ExecContext::new().with_threads(2));
        let batch = ColumnStats::compute(&m.view());
        for j in 0..2 {
            assert!((s.mean[j] - batch.mean[j]).abs() < 1e-12);
            assert!((s.std_dev[j] - batch.std_dev[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn transformed_data_has_zero_mean_unit_variance() {
        let m = sample();
        let s = fit(&m, &ExecContext::serial());
        let t = s.transform_to_matrix(&m);
        let stats = ColumnStats::compute(&t.view());
        for j in 0..2 {
            assert!(stats.mean[j].abs() < 1e-12);
            assert!((stats.std_dev[j] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_columns_are_only_centred() {
        let m = DenseMatrix::from_rows(&[&[5.0, 1.0], &[5.0, 2.0]]).unwrap();
        let s = fit(&m, &ExecContext::serial());
        let mut row = [5.0, 1.5];
        s.transform_row(&mut row);
        assert_eq!(row[0], 0.0);
        assert_eq!(s.n_features(), 2);
    }

    #[test]
    fn parallel_and_serial_fit_agree() {
        let m = sample();
        let a = fit(&m, &ExecContext::serial());
        let b = fit(&m, &ExecContext::new().with_threads(4));
        assert!(m3_linalg::ops::approx_eq(&a.mean, &b.mean, 1e-12));
        assert!(m3_linalg::ops::approx_eq(&a.std_dev, &b.std_dev, 1e-12));
    }

    #[test]
    fn deprecated_inherent_fit_matches_trait_fit() {
        let m = sample();
        #[allow(deprecated)]
        let old = Standardizer::fit(&m, 1).unwrap();
        let new = fit(&m, &ExecContext::serial());
        assert_eq!(old, new);
    }

    #[test]
    fn empty_data_is_rejected() {
        let empty = DenseMatrix::zeros(0, 3);
        assert!(UnsupervisedEstimator::fit(&StandardScaler, &empty, &ExecContext::new()).is_err());
        // Zero columns must error like the other estimators, not panic in
        // the sweep.
        let no_cols = DenseMatrix::zeros(5, 0);
        assert!(
            UnsupervisedEstimator::fit(&StandardScaler, &no_cols, &ExecContext::new()).is_err()
        );
    }

    #[test]
    fn append_bias_adds_constant_column() {
        let m = sample();
        let b = append_bias_column(&m);
        assert_eq!(b.shape(), (4, 3));
        for r in 0..4 {
            assert_eq!(b.get(r, 2), 1.0);
            assert_eq!(b.get(r, 0), m.get(r, 0));
        }
    }
}
