//! Feature preprocessing that works over out-of-core data.
//!
//! A standardiser over a 190 GB memory-mapped dataset cannot materialise the
//! transformed matrix; instead [`Standardizer`] is fitted with one streaming
//! sweep and then applied lazily, row by row, as algorithms pull data.

use m3_core::storage::RowStore;
use m3_core::AccessPattern;
use m3_linalg::stats::RunningStats;
use m3_linalg::{parallel, DenseMatrix};

use crate::{MlError, Result};

/// Z-score standardisation fitted from any [`RowStore`].
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    /// Per-feature means.
    pub mean: Vec<f64>,
    /// Per-feature standard deviations (zero-variance columns keep 0).
    pub std_dev: Vec<f64>,
}

impl Standardizer {
    /// Fit means and standard deviations with a chunk-parallel sweep.
    ///
    /// # Errors
    /// Fails when the data has no rows.
    pub fn fit<S: RowStore + Sync + ?Sized>(data: &S, n_threads: usize) -> Result<Self> {
        if data.n_rows() == 0 {
            return Err(MlError::InvalidData("cannot fit a standardizer on zero rows".into()));
        }
        data.advise(AccessPattern::Sequential);
        let d = data.n_cols();
        let threads = crate::resolve_threads(n_threads);
        let stats = parallel::par_chunked_map_reduce(
            data.n_rows(),
            threads,
            |range| {
                let mut acc = RunningStats::new(d);
                let block = data.rows_slice(range.start, range.end);
                for row in block.chunks_exact(d) {
                    acc.push_row(row);
                }
                acc
            },
            RunningStats::new(d),
            |mut a, b| {
                a.merge(&b);
                a
            },
        );
        Ok(Self {
            mean: stats.mean().to_vec(),
            std_dev: stats.std_dev(),
        })
    }

    /// Number of features this standardiser was fitted on.
    pub fn n_features(&self) -> usize {
        self.mean.len()
    }

    /// Standardise a single row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.n_features(), "feature count mismatch");
        for j in 0..row.len() {
            row[j] -= self.mean[j];
            if self.std_dev[j] > 1e-12 {
                row[j] /= self.std_dev[j];
            }
        }
    }

    /// Materialise the standardised copy of an entire store (only sensible
    /// for data that fits in memory, e.g. a test split).
    pub fn transform_to_matrix<S: RowStore + ?Sized>(&self, data: &S) -> DenseMatrix {
        let d = data.n_cols();
        let mut out = vec![0.0; data.n_rows() * d];
        for r in 0..data.n_rows() {
            let dst = &mut out[r * d..(r + 1) * d];
            dst.copy_from_slice(data.row(r));
            self.transform_row(dst);
        }
        DenseMatrix::from_vec(out, data.n_rows(), d).expect("shape preserved")
    }
}

/// Copy a store into an owned matrix with a constant `1.0` column appended —
/// the explicit-bias formulation some texts use.  Provided for completeness;
/// the built-in models carry their bias separately instead.
pub fn append_bias_column<S: RowStore + ?Sized>(data: &S) -> DenseMatrix {
    let d = data.n_cols();
    let mut out = vec![0.0; data.n_rows() * (d + 1)];
    for r in 0..data.n_rows() {
        let dst = &mut out[r * (d + 1)..(r + 1) * (d + 1)];
        dst[..d].copy_from_slice(data.row(r));
        dst[d] = 1.0;
    }
    DenseMatrix::from_vec(out, data.n_rows(), d + 1).expect("shape preserved")
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_linalg::stats::ColumnStats;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 100.0], &[2.0, 200.0], &[3.0, 300.0], &[4.0, 400.0]])
            .unwrap()
    }

    #[test]
    fn fit_matches_batch_statistics() {
        let m = sample();
        let s = Standardizer::fit(&m, 2).unwrap();
        let batch = ColumnStats::compute(&m.view());
        for j in 0..2 {
            assert!((s.mean[j] - batch.mean[j]).abs() < 1e-12);
            assert!((s.std_dev[j] - batch.std_dev[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn transformed_data_has_zero_mean_unit_variance() {
        let m = sample();
        let s = Standardizer::fit(&m, 1).unwrap();
        let t = s.transform_to_matrix(&m);
        let stats = ColumnStats::compute(&t.view());
        for j in 0..2 {
            assert!(stats.mean[j].abs() < 1e-12);
            assert!((stats.std_dev[j] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_columns_are_only_centred() {
        let m = DenseMatrix::from_rows(&[&[5.0, 1.0], &[5.0, 2.0]]).unwrap();
        let s = Standardizer::fit(&m, 1).unwrap();
        let mut row = [5.0, 1.5];
        s.transform_row(&mut row);
        assert_eq!(row[0], 0.0);
        assert_eq!(s.n_features(), 2);
    }

    #[test]
    fn parallel_and_serial_fit_agree() {
        let m = sample();
        let a = Standardizer::fit(&m, 1).unwrap();
        let b = Standardizer::fit(&m, 4).unwrap();
        assert!(m3_linalg::ops::approx_eq(&a.mean, &b.mean, 1e-12));
        assert!(m3_linalg::ops::approx_eq(&a.std_dev, &b.std_dev, 1e-12));
    }

    #[test]
    fn empty_data_is_rejected() {
        let empty = DenseMatrix::zeros(0, 3);
        assert!(Standardizer::fit(&empty, 1).is_err());
    }

    #[test]
    fn append_bias_adds_constant_column() {
        let m = sample();
        let b = append_bias_column(&m);
        assert_eq!(b.shape(), (4, 3));
        for r in 0..4 {
            assert_eq!(b.get(r, 2), 1.0);
            assert_eq!(b.get(r, 0), m.get(r, 0));
        }
    }
}
