//! k-means clustering (Lloyd's algorithm) with k-means++ initialisation and a
//! mini-batch variant.
//!
//! The paper's second workload: "k-means (10 iterations, 5 clusters)".  Each
//! Lloyd iteration is one sequential sweep over the rows of a [`RowStore`] —
//! assign every point to its nearest centroid while accumulating per-cluster
//! sums — followed by a tiny centroid update.  Exactly the access pattern the
//! OS read-ahead machinery (and the `m3-vmsim` model of it) rewards; the
//! sweep itself is driven by the shared [`ExecContext`], and the per-row
//! assignment runs through the fused distance-argmin kernel
//! ([`m3_linalg::kernels::nearest_centroid`]), which evaluates all `k`
//! centroids in one pass over the row (four at a time on the SIMD path).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use m3_core::storage::RowStore;
use m3_core::{ExecContext, ParamMatrix};
use m3_linalg::{ops, DenseMatrix};

use crate::api::{Model, UnsupervisedEstimator};
use crate::{MlError, Result};

/// Centroid initialisation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KMeansInit {
    /// Pick `k` distinct rows uniformly at random.
    Random,
    /// k-means++ seeding (D² sampling): slower to initialise, much better
    /// starting inertia.
    PlusPlus,
}

/// Hyper-parameters for [`KMeans`].
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iterations: usize,
    /// Stop early when the relative inertia improvement falls below this
    /// tolerance (set to `0.0` to always run `max_iterations`, the paper's
    /// protocol).
    pub tolerance: f64,
    /// Initialisation strategy.
    pub init: KMeansInit,
    /// RNG seed for initialisation.
    pub seed: u64,
    /// Legacy worker-thread count (`0` = all hardware threads), honoured only
    /// by the deprecated inherent [`KMeans::fit`] shim.  The estimator API
    /// takes execution policy from its [`ExecContext`].
    pub n_threads: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 8,
            max_iterations: 100,
            tolerance: 1e-6,
            init: KMeansInit::PlusPlus,
            seed: 0xC1_05_7E,
            n_threads: 0,
        }
    }
}

impl KMeansConfig {
    /// The paper's configuration: 5 clusters, exactly 10 Lloyd iterations.
    pub fn paper() -> Self {
        Self {
            k: 5,
            max_iterations: 10,
            tolerance: 0.0,
            ..Self::default()
        }
    }
}

/// k-means trainer.
#[derive(Debug, Clone, Default)]
pub struct KMeans {
    config: KMeansConfig,
}

/// A fitted k-means model.
///
/// The centroids live in a [`ParamMatrix`]: owned after training, or a
/// zero-copy view into a memory-mapped artifact after [`KMeansModel::load`].
#[derive(Debug, Clone)]
pub struct KMeansModel {
    /// Cluster centroids (`k × n_cols`).
    pub centroids: ParamMatrix,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
    /// Inertia after each iteration.
    pub inertia_history: Vec<f64>,
}

impl KMeans {
    /// Create a trainer with the given configuration.
    pub fn new(config: KMeansConfig) -> Self {
        Self { config }
    }

    /// Cluster the rows of `data`.
    ///
    /// # Errors
    /// Fails when `k == 0`, the data is empty, or there are fewer rows than
    /// clusters.
    #[deprecated(
        since = "0.1.0",
        note = "use `UnsupervisedEstimator::fit(&self, data, &ExecContext)` instead"
    )]
    pub fn fit<S: RowStore + Sync + ?Sized>(&self, data: &S) -> Result<KMeansModel> {
        UnsupervisedEstimator::fit(
            self,
            data,
            &ExecContext::new().with_threads(self.config.n_threads),
        )
    }
}

impl UnsupervisedEstimator for KMeans {
    type Model = KMeansModel;

    fn fit<S: RowStore + Sync + ?Sized>(&self, data: &S, ctx: &ExecContext) -> Result<KMeansModel> {
        let k = self.config.k;
        let n = data.n_rows();
        let d = data.n_cols();
        if k == 0 {
            return Err(MlError::InvalidData("k must be at least 1".to_string()));
        }
        if n == 0 || d == 0 {
            return Err(MlError::InvalidData("clustering data is empty".to_string()));
        }
        if n < k {
            return Err(MlError::InvalidData(format!(
                "cannot form {k} clusters from {n} rows"
            )));
        }

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut centroids = match self.config.init {
            KMeansInit::Random => init_random(data, k, &mut rng),
            KMeansInit::PlusPlus => init_plus_plus(data, k, &mut rng),
        };

        let mut inertia_history = Vec::with_capacity(self.config.max_iterations);
        let mut previous_inertia = f64::INFINITY;
        let mut iterations = 0;

        while iterations < self.config.max_iterations {
            let sweep = assignment_sweep(data, &centroids, ctx);
            iterations += 1;
            inertia_history.push(sweep.inertia);

            // Update step: new centroid = mean of assigned points; empty
            // clusters keep their previous centroid (mlpack's behaviour).
            for c in 0..k {
                if sweep.counts[c] > 0 {
                    let inv = 1.0 / sweep.counts[c] as f64;
                    let row = centroids.row_mut(c);
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = sweep.sums[c * d + j] * inv;
                    }
                }
            }

            let improvement =
                (previous_inertia - sweep.inertia) / previous_inertia.abs().max(1e-300);
            previous_inertia = sweep.inertia;
            if self.config.tolerance > 0.0 && improvement.abs() < self.config.tolerance {
                break;
            }
        }

        // One final sweep to report the inertia of the *final* centroids.
        let final_sweep = assignment_sweep(data, &centroids, ctx);
        Ok(KMeansModel {
            centroids: centroids.into(),
            inertia: final_sweep.inertia,
            iterations,
            inertia_history,
        })
    }
}

/// Result of one assignment sweep.
struct SweepResult {
    /// Per-cluster element-wise sums (`k * d`).
    sums: Vec<f64>,
    /// Per-cluster point counts.
    counts: Vec<u64>,
    /// Total within-cluster sum of squared distances.
    inertia: f64,
}

/// Assign every row to its nearest centroid, accumulating per-cluster sums,
/// counts and the total inertia, in parallel over the context's fixed
/// row chunks.
fn assignment_sweep<S: RowStore + Sync + ?Sized>(
    data: &S,
    centroids: &DenseMatrix,
    ctx: &ExecContext,
) -> SweepResult {
    let d = data.n_cols();
    let k = centroids.n_rows();
    ctx.map_reduce_rows(
        data,
        |chunk| {
            let mut sums = vec![0.0; k * d];
            let mut counts = vec![0u64; k];
            let mut inertia = 0.0;
            for row in chunk.data.chunks_exact(d) {
                let (best, dist) = nearest_centroid(row, centroids);
                inertia += dist;
                counts[best] += 1;
                ops::add_assign(&mut sums[best * d..(best + 1) * d], row);
            }
            SweepResult {
                sums,
                counts,
                inertia,
            }
        },
        SweepResult {
            sums: vec![0.0; k * d],
            counts: vec![0u64; k],
            inertia: 0.0,
        },
        |mut acc, part| {
            ops::add_assign(&mut acc.sums, &part.sums);
            for (a, b) in acc.counts.iter_mut().zip(&part.counts) {
                *a += b;
            }
            acc.inertia += part.inertia;
            acc
        },
    )
}

/// Index of the nearest centroid and the squared distance to it, via the
/// fused distance-argmin kernel (ties resolve to the lowest index).
fn nearest_centroid(row: &[f64], centroids: &DenseMatrix) -> (usize, f64) {
    m3_linalg::kernels::nearest_centroid(row, centroids.as_slice(), centroids.n_rows())
}

/// Random initialisation: `k` distinct rows.
fn init_random<S: RowStore + ?Sized>(data: &S, k: usize, rng: &mut StdRng) -> DenseMatrix {
    let n = data.n_rows();
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < k {
        chosen.insert(rng.gen_range(0..n));
    }
    let mut centroids = DenseMatrix::zeros(k, data.n_cols());
    for (c, &row_idx) in chosen.iter().enumerate() {
        centroids.row_mut(c).copy_from_slice(data.row(row_idx));
    }
    centroids
}

/// k-means++ (D²) initialisation.
fn init_plus_plus<S: RowStore + ?Sized>(data: &S, k: usize, rng: &mut StdRng) -> DenseMatrix {
    let n = data.n_rows();
    let d = data.n_cols();
    let mut centroids = DenseMatrix::zeros(k, d);

    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));

    // Squared distance of every point to its nearest chosen centroid.
    let mut distances: Vec<f64> = (0..n)
        .map(|r| ops::squared_distance(data.row(r), centroids.row(0)))
        .collect();

    for c in 1..k {
        let total: f64 = distances.iter().sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &dist) in distances.iter().enumerate() {
                if target < dist {
                    pick = i;
                    break;
                }
                target -= dist;
            }
            pick
        };
        centroids.row_mut(c).copy_from_slice(data.row(chosen));
        // Refresh the nearest-centroid distances.
        for (r, dist) in distances.iter_mut().enumerate() {
            let new_dist = ops::squared_distance(data.row(r), centroids.row(c));
            if new_dist < *dist {
                *dist = new_dist;
            }
        }
    }
    centroids
}

impl KMeansModel {
    /// Index of the cluster nearest to `row`.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        m3_linalg::kernels::nearest_centroid(row, self.centroids.as_slice(), self.k()).0
    }

    /// Cluster assignments for every row of `data`.
    pub fn predict<S: RowStore + ?Sized>(&self, data: &S) -> Vec<usize> {
        (0..data.n_rows())
            .map(|r| self.predict_row(data.row(r)))
            .collect()
    }

    /// Within-cluster sum of squared distances of `data` under this model.
    pub fn inertia_of<S: RowStore + ?Sized>(&self, data: &S) -> f64 {
        (0..data.n_rows())
            .map(|r| {
                m3_linalg::kernels::nearest_centroid(
                    data.row(r),
                    self.centroids.as_slice(),
                    self.k(),
                )
                .1
            })
            .sum()
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.n_rows()
    }
}

impl Model for KMeansModel {
    fn n_features(&self) -> usize {
        self.centroids.n_cols()
    }

    /// The nearest cluster index, as `f64` (the trait's uniform row output).
    fn predict_row(&self, row: &[f64]) -> f64 {
        KMeansModel::predict_row(self, row) as f64
    }

    /// Fused chunk kernel: distance-argmin over all centroids per row.
    fn predict_chunk(&self, chunk: m3_core::chunked::RowChunk<'_>, out: &mut Vec<f64>) {
        let start = out.len();
        out.resize(start + chunk.n_rows(), 0.0);
        m3_linalg::kernels::nearest_centroid_chunk(
            chunk.data,
            self.centroids.as_slice(),
            self.k(),
            &mut out[start..],
        );
    }

    /// Negative inertia over `data` (higher is better); `labels` are ignored.
    fn score(&self, data: &dyn RowStore, _labels: &[f64]) -> f64 {
        -self.inertia_of(data)
    }
}

/// Mini-batch k-means (Sculley 2010) — the "online learning" counterpart of
/// Lloyd's algorithm, included for the paper's future-work direction.  Each
/// step samples a batch of rows, assigns them, and moves the affected
/// centroids by a per-centroid decaying learning rate.
#[derive(Debug, Clone)]
pub struct MiniBatchKMeans {
    /// Shared configuration (k, init, seed).
    pub config: KMeansConfig,
    /// Rows sampled per step.
    pub batch_size: usize,
    /// Number of mini-batch steps.
    pub n_steps: usize,
}

impl MiniBatchKMeans {
    /// Create a mini-batch trainer.
    pub fn new(config: KMeansConfig, batch_size: usize, n_steps: usize) -> Self {
        Self {
            config,
            batch_size: batch_size.max(1),
            n_steps,
        }
    }

    /// Cluster the rows of `data` using mini-batch updates.
    ///
    /// # Errors
    /// Same conditions as [`KMeans::fit`].
    #[deprecated(
        since = "0.1.0",
        note = "use `UnsupervisedEstimator::fit(&self, data, &ExecContext)` instead"
    )]
    pub fn fit<S: RowStore + Sync + ?Sized>(&self, data: &S) -> Result<KMeansModel> {
        UnsupervisedEstimator::fit(
            self,
            data,
            &ExecContext::new().with_threads(self.config.n_threads),
        )
    }
}

impl UnsupervisedEstimator for MiniBatchKMeans {
    type Model = KMeansModel;

    fn fit<S: RowStore + Sync + ?Sized>(&self, data: &S, ctx: &ExecContext) -> Result<KMeansModel> {
        let k = self.config.k;
        let n = data.n_rows();
        if k == 0 || n == 0 || data.n_cols() == 0 {
            return Err(MlError::InvalidData("empty data or k == 0".to_string()));
        }
        if n < k {
            return Err(MlError::InvalidData(format!(
                "cannot form {k} clusters from {n} rows"
            )));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut centroids = match self.config.init {
            KMeansInit::Random => init_random(data, k, &mut rng),
            KMeansInit::PlusPlus => init_plus_plus(data, k, &mut rng),
        };
        let mut counts = vec![0u64; k];

        // Stochastic row sampling: tell the OS not to read ahead.
        data.advise(m3_core::AccessPattern::Random);
        for _ in 0..self.n_steps {
            // Sample a batch and apply per-centroid gradient-style updates.
            for _ in 0..self.batch_size.min(n) {
                let row = data.row(rng.gen_range(0..n));
                let (best, _) = nearest_centroid(row, &centroids);
                counts[best] += 1;
                let lr = 1.0 / counts[best] as f64;
                let centroid = centroids.row_mut(best);
                for (cv, rv) in centroid.iter_mut().zip(row) {
                    *cv += lr * (rv - *cv);
                }
            }
        }

        let sweep = assignment_sweep(data, &centroids, ctx);
        Ok(KMeansModel {
            centroids: centroids.into(),
            inertia: sweep.inertia,
            iterations: self.n_steps,
            inertia_history: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use m3_data::{GaussianBlobs, RowGenerator};

    fn blobs(n: usize) -> (DenseMatrix, GaussianBlobs) {
        let gen = GaussianBlobs::with_centers(
            vec![
                vec![0.0, 0.0, 0.0],
                vec![10.0, 10.0, 10.0],
                vec![-10.0, 10.0, 0.0],
            ],
            0.7,
            13,
        );
        let (m, _) = gen.materialize(n);
        (m, gen)
    }

    fn fit(trainer: &KMeans, data: &DenseMatrix, ctx: &ExecContext) -> KMeansModel {
        UnsupervisedEstimator::fit(trainer, data, ctx).unwrap()
    }

    #[test]
    fn recovers_well_separated_clusters() {
        let (x, gen) = blobs(300);
        let model = fit(
            &KMeans::new(KMeansConfig {
                k: 3,
                max_iterations: 50,
                ..Default::default()
            }),
            &x,
            &ExecContext::new(),
        );
        assert_eq!(model.k(), 3);
        // Every learnt centroid should be close to a distinct true centre.
        let mut matched = [false; 3];
        for c in 0..3 {
            let learnt = model.centroids.row(c);
            let (best, dist) = gen
                .centers()
                .iter()
                .enumerate()
                .map(|(i, truth)| (i, ops::distance(learnt, truth)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert!(
                dist < 1.0,
                "centroid {c} is {dist} from its nearest true centre"
            );
            matched[best] = true;
        }
        assert!(matched.iter().all(|&m| m), "each true centre matched once");
    }

    #[test]
    fn inertia_decreases_monotonically() {
        let (x, _) = blobs(200);
        let model = fit(
            &KMeans::new(KMeansConfig {
                k: 3,
                max_iterations: 20,
                tolerance: 0.0,
                init: KMeansInit::Random,
                ..Default::default()
            }),
            &x,
            &ExecContext::new(),
        );
        let mut previous = f64::INFINITY;
        for &inertia in &model.inertia_history {
            assert!(
                inertia <= previous + 1e-9,
                "inertia increased: {inertia} > {previous}"
            );
            previous = inertia;
        }
        assert!(model.inertia <= model.inertia_history[0]);
    }

    #[test]
    fn paper_config_runs_exactly_ten_iterations() {
        let (x, _) = blobs(100);
        let mut config = KMeansConfig::paper();
        config.k = 3; // only 3 true clusters in the fixture
        let model = fit(&KMeans::new(config), &x, &ExecContext::new());
        assert_eq!(model.iterations, 10);
        assert_eq!(model.inertia_history.len(), 10);
    }

    #[test]
    fn plus_plus_is_no_worse_than_random_on_average() {
        let (x, _) = blobs(300);
        let inertia = |init| {
            fit(
                &KMeans::new(KMeansConfig {
                    k: 3,
                    max_iterations: 1,
                    tolerance: 0.0,
                    init,
                    seed: 4,
                    ..Default::default()
                }),
                &x,
                &ExecContext::new(),
            )
            .inertia
        };
        // After a single iteration, ++ seeding should already be competitive.
        assert!(inertia(KMeansInit::PlusPlus) <= inertia(KMeansInit::Random) * 1.5);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (x, _) = blobs(150);
        let run = |seed| {
            fit(
                &KMeans::new(KMeansConfig {
                    k: 3,
                    seed,
                    ..Default::default()
                }),
                &x,
                &ExecContext::new(),
            )
            .centroids
        };
        assert_eq!(run(7).as_slice(), run(7).as_slice());
    }

    #[test]
    fn parallel_and_serial_sweeps_are_bit_identical() {
        let (x, _) = blobs(123);
        let config = KMeansConfig {
            k: 3,
            max_iterations: 5,
            tolerance: 0.0,
            ..Default::default()
        };
        let run = |threads| {
            fit(
                &KMeans::new(config.clone()),
                &x,
                &ExecContext::new()
                    .with_threads(threads)
                    .with_chunk_bytes(m3_core::PAGE_SIZE)
                    .with_parallel_threshold(0), // force the pool at test scale
            )
        };
        let serial = run(1);
        let parallel = run(4);
        for (a, b) in serial
            .centroids
            .as_slice()
            .iter()
            .zip(parallel.centroids.as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(serial.inertia.to_bits(), parallel.inertia.to_bits());
    }

    #[test]
    fn deprecated_inherent_fit_matches_trait_fit() {
        let (x, _) = blobs(90);
        let trainer = KMeans::new(KMeansConfig {
            k: 3,
            max_iterations: 5,
            ..Default::default()
        });
        #[allow(deprecated)]
        let old = KMeans::fit(&trainer, &x).unwrap();
        let new = UnsupervisedEstimator::fit(&trainer, &x, &ExecContext::new()).unwrap();
        assert_eq!(old.centroids.as_slice(), new.centroids.as_slice());
    }

    #[test]
    fn predictions_match_nearest_centroid() {
        let (x, _) = blobs(60);
        let model = fit(
            &KMeans::new(KMeansConfig {
                k: 3,
                ..Default::default()
            }),
            &x,
            &ExecContext::new(),
        );
        let preds = model.predict(&x);
        assert_eq!(preds.len(), 60);
        for (r, &c) in preds.iter().enumerate() {
            assert_eq!(c, model.predict_row(x.row(r)));
            assert!(c < 3);
        }
        assert!((model.inertia_of(&x) - model.inertia).abs() < 1e-9);
        // Model-trait view: f64 cluster ids and negative-inertia score.
        let as_model: &dyn Model = &model;
        let batch = as_model.predict_batch(&x);
        for (p, &c) in batch.iter().zip(&preds) {
            assert_eq!(*p, c as f64);
        }
        assert!((as_model.score(&x, &[]) + model.inertia).abs() < 1e-9);
    }

    #[test]
    fn in_memory_and_mmap_clustering_agree() {
        let (x, _) = blobs(120);
        let dir = tempfile::tempdir().unwrap();
        let mapped = m3_core::alloc::persist_matrix(dir.path().join("km.m3"), &x).unwrap();
        let trainer = KMeans::new(KMeansConfig {
            k: 3,
            seed: 99,
            ..Default::default()
        });
        let ctx = ExecContext::new().with_threads(2);
        let a = fit(&trainer, &x, &ctx);
        let b = UnsupervisedEstimator::fit(&trainer, &mapped, &ctx).unwrap();
        for (va, vb) in a.centroids.as_slice().iter().zip(b.centroids.as_slice()) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    #[test]
    fn mini_batch_reaches_reasonable_inertia() {
        let (x, _) = blobs(300);
        let ctx = ExecContext::new();
        let full = fit(
            &KMeans::new(KMeansConfig {
                k: 3,
                ..Default::default()
            }),
            &x,
            &ctx,
        );
        let mini = UnsupervisedEstimator::fit(
            &MiniBatchKMeans::new(
                KMeansConfig {
                    k: 3,
                    ..Default::default()
                },
                32,
                50,
            ),
            &x,
            &ctx,
        )
        .unwrap();
        assert!(
            mini.inertia < full.inertia * 3.0,
            "mini-batch inertia {} vs full {}",
            mini.inertia,
            full.inertia
        );
    }

    #[test]
    fn validation_errors() {
        let (x, _) = blobs(10);
        let ctx = ExecContext::new();
        let err = |config: KMeansConfig| {
            UnsupervisedEstimator::fit(&KMeans::new(config), &x, &ctx).is_err()
        };
        assert!(err(KMeansConfig {
            k: 0,
            ..Default::default()
        }));
        assert!(err(KMeansConfig {
            k: 11,
            ..Default::default()
        }));
        let empty = DenseMatrix::zeros(0, 2);
        assert!(UnsupervisedEstimator::fit(&KMeans::default(), &empty, &ctx).is_err());
        assert!(UnsupervisedEstimator::fit(
            &MiniBatchKMeans::new(
                KMeansConfig {
                    k: 20,
                    ..Default::default()
                },
                8,
                5
            ),
            &x,
            &ctx
        )
        .is_err());
    }
}
