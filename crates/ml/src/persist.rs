//! Zero-copy model persistence over the [`m3_core::ModelFile`] artifact
//! format.
//!
//! Saving writes a fitted model's parameters into a versioned, page-aligned
//! `M3MODL01` container; loading memory-maps the artifact, validates the
//! header in O(1), and hands the parameters back as [`m3_core::ParamVec`]
//! views **into the mapping** — no copy, no deserialisation, first access
//! pulls pages on demand (with `madvise(WILLNEED)` issued at open).  A loaded
//! model therefore predicts bit-identically to the model that was saved: the
//! weights are, byte for byte, the same memory the trainer produced.
//!
//! Every fitted model gains inherent `save`/`load`:
//!
//! ```
//! use m3_core::ExecContext;
//! use m3_data::{LinearProblem, RowGenerator};
//! use m3_ml::api::{Estimator, Model};
//! use m3_ml::logistic::{LogisticConfig, LogisticRegression};
//! use m3_ml::LogisticModel;
//!
//! let dir = tempfile::tempdir().unwrap();
//! let (x, y) = LinearProblem::random_classification(6, 0.05, 7).materialize(200);
//! let trained = Estimator::fit(
//!     &LogisticRegression::new(LogisticConfig::default()),
//!     &x,
//!     &y,
//!     &ExecContext::new(),
//! )
//! .unwrap();
//!
//! let path = dir.path().join("model.m3m");
//! trained.save(&path).unwrap();
//! let served = LogisticModel::load(&path).unwrap();   // zero-copy mmap
//! assert!(served.weights.is_mapped());
//! assert_eq!(served.predict(&x), trained.predict(&x));
//! ```
//!
//! [`load_model`] opens an artifact of *any* predictive kind as a
//! `Box<dyn Model + Send + Sync>` by dispatching on the header's kind tag —
//! the entry point a model server uses to hot-load artifacts it did not
//! train.

use std::path::Path;

use m3_core::{CoreError, ModelFile, ModelFileBuilder, ModelKind, ParamMatrix};
use m3_optim::termination::{OptimizationResult, TerminationReason};

use crate::api::Model;
use crate::kmeans::KMeansModel;
use crate::linear_regression::LinearModel;
use crate::logistic::LogisticModel;
use crate::naive_bayes::GaussianNb;
use crate::preprocess::Standardizer;
use crate::softmax::SoftmaxModel;
use crate::Result;

/// Open `path` and require its kind tag to match `kind`.
fn open_as(path: &Path, kind: ModelKind) -> Result<ModelFile> {
    let file = ModelFile::open(path)?;
    if file.kind() != kind {
        return Err(CoreError::BadHeader {
            reason: format!(
                "expected a {} artifact, found {}",
                kind.name(),
                file.kind().name()
            ),
        }
        .into());
    }
    Ok(file)
}

/// Placeholder training statistics for models loaded from an artifact — the
/// container persists parameters, not the optimiser run that produced them.
fn loaded_result() -> OptimizationResult {
    OptimizationResult {
        weights: Vec::new(),
        value: f64::NAN,
        iterations: 0,
        function_evaluations: 0,
        reason: TerminationReason::MaxIterations,
        value_history: Vec::new(),
    }
}

fn logistic_from_file(file: &ModelFile) -> Result<LogisticModel> {
    let d = file.n_features();
    Ok(LogisticModel {
        weights: file.param_vec(0, d)?,
        bias: file.payload()[d],
        optimization: loaded_result(),
    })
}

fn linear_from_file(file: &ModelFile) -> Result<LinearModel> {
    let d = file.n_features();
    Ok(LinearModel {
        weights: file.param_vec(0, d)?,
        bias: file.payload()[d],
    })
}

fn softmax_from_file(file: &ModelFile) -> Result<SoftmaxModel> {
    let (d, k) = (file.n_features(), file.n_outputs());
    Ok(SoftmaxModel {
        weights: file.param_vec(0, k * (d + 1))?,
        n_classes: k,
        n_features: d,
        optimization: loaded_result(),
    })
}

fn gaussian_nb_from_file(file: &ModelFile) -> Result<GaussianNb> {
    let (d, k) = (file.n_features(), file.n_outputs());
    Ok(GaussianNb {
        log_priors: file.param_vec(0, k)?,
        means: file.param_vec(k, k * d)?,
        variances: file.param_vec(k + k * d, k * d)?,
        n_classes: k,
        n_features: d,
    })
}

fn kmeans_from_file(file: &ModelFile) -> Result<KMeansModel> {
    let (d, k) = (file.n_features(), file.n_outputs());
    Ok(KMeansModel {
        centroids: ParamMatrix::new(file.param_vec(0, k * d)?, k, d)?,
        inertia: file.payload()[k * d],
        iterations: 0,
        inertia_history: Vec::new(),
    })
}

fn standardizer_from_file(file: &ModelFile) -> Result<Standardizer> {
    let d = file.n_features();
    Ok(Standardizer {
        mean: file.param_vec(0, d)?,
        std_dev: file.param_vec(d, d)?,
    })
}

/// Open a model artifact of any predictive kind, dispatching on the header's
/// kind tag.
///
/// This is the server-side entry point: the caller does not know (or care)
/// which estimator produced the artifact, only that the result predicts.
/// Scaler artifacts are transformers, not predictors, and are rejected —
/// load those with [`Standardizer::load`].
///
/// # Errors
/// Fails when the artifact cannot be opened or validated, or when its kind
/// has no `dyn Model` view.
pub fn load_model(path: impl AsRef<Path>) -> Result<Box<dyn Model + Send + Sync>> {
    model_from_file(ModelFile::open(path.as_ref())?)
}

/// [`load_model`] with a mandatory checksum pass: every payload byte is
/// re-hashed against the artifact's header checksums before the model is
/// returned.  This is what the serve registry calls before publishing a
/// swap, so a torn or bit-rotted artifact can never reach traffic.
///
/// # Errors
/// Everything [`load_model`] can fail with, plus
/// [`CoreError::ChecksumMismatch`] for corrupted payloads and
/// [`CoreError::BadHeader`] for artifacts written without checksums.
pub fn load_model_verified(path: impl AsRef<Path>) -> Result<Box<dyn Model + Send + Sync>> {
    model_from_file(ModelFile::open_verified(path.as_ref())?)
}

/// Shared dispatch on the header's kind tag.
fn model_from_file(file: ModelFile) -> Result<Box<dyn Model + Send + Sync>> {
    Ok(match file.kind() {
        ModelKind::Logistic => Box::new(logistic_from_file(&file)?),
        ModelKind::Softmax => Box::new(softmax_from_file(&file)?),
        ModelKind::Linear => Box::new(linear_from_file(&file)?),
        ModelKind::GaussianNb => Box::new(gaussian_nb_from_file(&file)?),
        ModelKind::KMeans => Box::new(kmeans_from_file(&file)?),
        ModelKind::Scaler => {
            return Err(CoreError::BadHeader {
                reason: "scaler artifacts transform rows rather than predict; \
                         open them with Standardizer::load"
                    .to_string(),
            }
            .into())
        }
    })
}

impl LogisticModel {
    /// Persist the model as a page-aligned mmap artifact at `path`.
    ///
    /// Payload layout: `weights[d]` then `[bias]`.
    ///
    /// # Errors
    /// Fails on I/O errors or an invalid shape.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<ModelFile> {
        let mut b = ModelFileBuilder::create(path, ModelKind::Logistic, self.weights.len(), 1)?;
        b.push_params(&self.weights)?;
        b.push_params(&[self.bias])?;
        Ok(b.finish()?)
    }

    /// Load a model saved by [`LogisticModel::save`], using the mapped
    /// weights in place (zero copy).  The attached `optimization` statistics
    /// are synthetic — the artifact does not persist the training run.
    ///
    /// # Errors
    /// Fails when the artifact is missing, corrupt, or of another kind.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        logistic_from_file(&open_as(path.as_ref(), ModelKind::Logistic)?)
    }
}

impl LinearModel {
    /// Persist the model as a page-aligned mmap artifact at `path`.
    ///
    /// Payload layout: `weights[d]` then `[bias]`.
    ///
    /// # Errors
    /// Fails on I/O errors or an invalid shape.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<ModelFile> {
        let mut b = ModelFileBuilder::create(path, ModelKind::Linear, self.weights.len(), 1)?;
        b.push_params(&self.weights)?;
        b.push_params(&[self.bias])?;
        Ok(b.finish()?)
    }

    /// Load a model saved by [`LinearModel::save`], using the mapped weights
    /// in place (zero copy).
    ///
    /// # Errors
    /// Fails when the artifact is missing, corrupt, or of another kind.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        linear_from_file(&open_as(path.as_ref(), ModelKind::Linear)?)
    }
}

impl SoftmaxModel {
    /// Persist the model as a page-aligned mmap artifact at `path`.
    ///
    /// Payload layout: `n_classes` blocks of `weights[d] ++ [bias]` — the
    /// model's packed parameter vector verbatim.
    ///
    /// # Errors
    /// Fails on I/O errors or an invalid shape.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<ModelFile> {
        let mut b =
            ModelFileBuilder::create(path, ModelKind::Softmax, self.n_features, self.n_classes)?;
        b.push_params(&self.weights)?;
        Ok(b.finish()?)
    }

    /// Load a model saved by [`SoftmaxModel::save`], using the mapped
    /// parameters in place (zero copy).  The attached `optimization`
    /// statistics are synthetic.
    ///
    /// # Errors
    /// Fails when the artifact is missing, corrupt, or of another kind.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        softmax_from_file(&open_as(path.as_ref(), ModelKind::Softmax)?)
    }
}

impl GaussianNb {
    /// Persist the model as a page-aligned mmap artifact at `path`.
    ///
    /// Payload layout: `log_priors[k]`, `means[k*d]`, `variances[k*d]`.
    ///
    /// # Errors
    /// Fails on I/O errors or an invalid shape.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<ModelFile> {
        let mut b =
            ModelFileBuilder::create(path, ModelKind::GaussianNb, self.n_features, self.n_classes)?;
        b.push_params(&self.log_priors)?;
        b.push_params(&self.means)?;
        b.push_params(&self.variances)?;
        Ok(b.finish()?)
    }

    /// Load a model saved by [`GaussianNb::save`], using the mapped
    /// parameters in place (zero copy).
    ///
    /// # Errors
    /// Fails when the artifact is missing, corrupt, or of another kind.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        gaussian_nb_from_file(&open_as(path.as_ref(), ModelKind::GaussianNb)?)
    }
}

impl KMeansModel {
    /// Persist the model as a page-aligned mmap artifact at `path`.
    ///
    /// Payload layout: `centroids[k*d]` then `[inertia]`.
    ///
    /// # Errors
    /// Fails on I/O errors or an invalid shape.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<ModelFile> {
        let mut b = ModelFileBuilder::create(
            path,
            ModelKind::KMeans,
            self.centroids.n_cols(),
            self.centroids.n_rows(),
        )?;
        b.push_params(self.centroids.as_slice())?;
        b.push_params(&[self.inertia])?;
        Ok(b.finish()?)
    }

    /// Load a model saved by [`KMeansModel::save`], using the mapped
    /// centroids in place (zero copy).  `iterations` and `inertia_history`
    /// are not persisted and come back empty.
    ///
    /// # Errors
    /// Fails when the artifact is missing, corrupt, or of another kind.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        kmeans_from_file(&open_as(path.as_ref(), ModelKind::KMeans)?)
    }
}

impl Standardizer {
    /// Persist the transformer as a page-aligned mmap artifact at `path`.
    ///
    /// Payload layout: `mean[d]` then `std_dev[d]`.
    ///
    /// # Errors
    /// Fails on I/O errors or an invalid shape.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<ModelFile> {
        let mut b = ModelFileBuilder::create(path, ModelKind::Scaler, self.mean.len(), 1)?;
        b.push_params(&self.mean)?;
        b.push_params(&self.std_dev)?;
        Ok(b.finish()?)
    }

    /// Load a transformer saved by [`Standardizer::save`], using the mapped
    /// statistics in place (zero copy).
    ///
    /// # Errors
    /// Fails when the artifact is missing, corrupt, or of another kind.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        standardizer_from_file(&open_as(path.as_ref(), ModelKind::Scaler)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{BatchPredict, Estimator, UnsupervisedEstimator};
    use crate::kmeans::{KMeans, KMeansConfig};
    use crate::linear_regression::LinearRegression;
    use crate::logistic::LogisticRegression;
    use crate::naive_bayes::GaussianNbTrainer;
    use crate::preprocess::StandardScaler;
    use crate::softmax::{SoftmaxConfig, SoftmaxRegression};
    use crate::MlError;
    use m3_core::ExecContext;
    use m3_data::{GaussianBlobs, LinearProblem, RowGenerator};
    use m3_linalg::DenseMatrix;

    fn blobs(n: usize) -> (DenseMatrix, Vec<f64>) {
        GaussianBlobs::new(3, 4, 8.0, 1.0, 11).materialize(n)
    }

    #[test]
    fn logistic_round_trip_is_zero_copy_and_bit_identical() {
        let dir = tempfile::tempdir().unwrap();
        let (x, y) = LinearProblem::random_classification(5, 0.05, 3).materialize(150);
        let ctx = ExecContext::new();
        let trained = Estimator::fit(&LogisticRegression::default(), &x, &y, &ctx).unwrap();

        let path = dir.path().join("logistic.m3m");
        let file = trained.save(&path).unwrap();
        assert_eq!(file.kind(), ModelKind::Logistic);

        let loaded = LogisticModel::load(&path).unwrap();
        assert!(loaded.weights.is_mapped());
        assert!(!trained.weights.is_mapped());
        for (a, b) in trained.weights.iter().zip(&loaded.weights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(trained.bias.to_bits(), loaded.bias.to_bits());
        assert_eq!(trained.predict(&x), loaded.predict(&x));
        assert_eq!(
            trained.predict_batch_ctx(&x, &ctx),
            loaded.predict_batch_ctx(&x, &ctx)
        );
    }

    #[test]
    fn softmax_round_trip_predicts_identically() {
        let dir = tempfile::tempdir().unwrap();
        let (x, y) = blobs(200);
        let trained = Estimator::fit(
            &SoftmaxRegression::new(SoftmaxConfig {
                n_classes: 3,
                max_iterations: 20,
                ..Default::default()
            }),
            &x,
            &y,
            &ExecContext::new(),
        )
        .unwrap();
        let path = dir.path().join("softmax.m3m");
        trained.save(&path).unwrap();
        let loaded = SoftmaxModel::load(&path).unwrap();
        assert!(loaded.weights.is_mapped());
        assert_eq!(loaded.n_classes, 3);
        assert_eq!(loaded.n_features, 4);
        assert_eq!(trained.predict(&x), loaded.predict(&x));
    }

    #[test]
    fn gaussian_nb_round_trip_predicts_identically() {
        let dir = tempfile::tempdir().unwrap();
        let (x, y) = blobs(150);
        let trained =
            Estimator::fit(&GaussianNbTrainer::new(3), &x, &y, &ExecContext::new()).unwrap();
        let path = dir.path().join("nb.m3m");
        trained.save(&path).unwrap();
        let loaded = GaussianNb::load(&path).unwrap();
        assert!(loaded.log_priors.is_mapped());
        assert!(loaded.means.is_mapped());
        assert!(loaded.variances.is_mapped());
        assert_eq!(trained.predict(&x), loaded.predict(&x));
    }

    #[test]
    fn kmeans_round_trip_predicts_identically() {
        let dir = tempfile::tempdir().unwrap();
        let (x, _) = blobs(120);
        let trained = UnsupervisedEstimator::fit(
            &KMeans::new(KMeansConfig {
                k: 3,
                ..Default::default()
            }),
            &x,
            &ExecContext::new(),
        )
        .unwrap();
        let path = dir.path().join("kmeans.m3m");
        trained.save(&path).unwrap();
        let loaded = KMeansModel::load(&path).unwrap();
        assert!(loaded.centroids.is_mapped());
        assert_eq!(loaded.inertia.to_bits(), trained.inertia.to_bits());
        assert_eq!(trained.predict(&x), loaded.predict(&x));
    }

    #[test]
    fn linear_round_trip_predicts_identically() {
        let dir = tempfile::tempdir().unwrap();
        let (x, y) = LinearProblem::regression(vec![2.0, -1.0, 0.5], 3.0, 0.01, 5).materialize(80);
        let trained =
            Estimator::fit(&LinearRegression::default(), &x, &y, &ExecContext::new()).unwrap();
        let path = dir.path().join("linear.m3m");
        trained.save(&path).unwrap();
        let loaded = LinearModel::load(&path).unwrap();
        assert!(loaded.weights.is_mapped());
        for (a, b) in trained.predict(&x).iter().zip(loaded.predict(&x)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn standardizer_round_trip_transforms_identically() {
        let dir = tempfile::tempdir().unwrap();
        let (x, _) = blobs(90);
        let fitted = UnsupervisedEstimator::fit(&StandardScaler, &x, &ExecContext::new()).unwrap();
        let path = dir.path().join("scaler.m3m");
        fitted.save(&path).unwrap();
        let loaded = Standardizer::load(&path).unwrap();
        assert!(loaded.mean.is_mapped());
        assert_eq!(fitted, loaded);
        let mut a = x.row(0).to_vec();
        let mut b = a.clone();
        fitted.transform_row(&mut a);
        loaded.transform_row(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn load_model_dispatches_on_kind() {
        let dir = tempfile::tempdir().unwrap();
        let (x, y) = blobs(150);
        let ctx = ExecContext::new();
        let nb = Estimator::fit(&GaussianNbTrainer::new(3), &x, &y, &ctx).unwrap();
        let path = dir.path().join("any.m3m");
        nb.save(&path).unwrap();

        let erased = load_model(&path).unwrap();
        assert_eq!(erased.n_features(), 4);
        assert_eq!(erased.predict_batch(&x), nb.predict(&x));
        // Pooled batch prediction through the trait object.
        assert_eq!(erased.predict_batch_ctx(&x, &ctx), nb.predict(&x));
    }

    #[test]
    fn wrong_kind_is_a_typed_error() {
        let dir = tempfile::tempdir().unwrap();
        let (x, y) = blobs(100);
        let nb = Estimator::fit(&GaussianNbTrainer::new(3), &x, &y, &ExecContext::new()).unwrap();
        let path = dir.path().join("nb.m3m");
        nb.save(&path).unwrap();
        match LogisticModel::load(&path) {
            Err(MlError::Artifact(CoreError::BadHeader { reason })) => {
                assert!(reason.contains("logistic"), "{reason}");
                assert!(reason.contains("gaussian_nb"), "{reason}");
            }
            other => panic!("expected a kind mismatch, got {other:?}"),
        }
    }

    #[test]
    fn scaler_artifacts_are_rejected_by_load_model() {
        let dir = tempfile::tempdir().unwrap();
        let (x, _) = blobs(60);
        let fitted = UnsupervisedEstimator::fit(&StandardScaler, &x, &ExecContext::new()).unwrap();
        let path = dir.path().join("scaler.m3m");
        fitted.save(&path).unwrap();
        assert!(matches!(
            load_model(&path),
            Err(MlError::Artifact(CoreError::BadHeader { .. }))
        ));
    }

    #[test]
    fn missing_artifact_is_a_typed_io_error() {
        let dir = tempfile::tempdir().unwrap();
        assert!(matches!(
            LogisticModel::load(dir.path().join("absent.m3m")),
            Err(MlError::Artifact(CoreError::Io { .. }))
        ));
    }
}
