//! Out-of-core sparse training: a binary CSR file **larger than the
//! `ExecContext` chunk budget** is written through the streaming builder,
//! memory-mapped, and trained through the sparse estimator paths — and the
//! results must match the in-memory CSR path **bit for bit**, because the
//! sparse sweep's chunking and fold order depend only on the data's shape
//! (`n_rows`, `nnz`), never on where the arrays live.
//!
//! Also drives the ISSUE's acceptance scenario end to end: a libsvm text
//! dataset converts to binary CSR without densification and trains logistic
//! regression through the mmap-backed store, matching the dense result
//! within tolerance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use m3::prelude::*;

/// Chunk budget deliberately far below the dataset size so every sweep must
/// cross many mapped chunks.
const CHUNK_BYTES: usize = 64 * 1024;

/// A seeded sparse classification problem sized to overflow `CHUNK_BYTES`
/// many times over.
fn big_sparse_problem() -> (CsrMatrix, Vec<f64>) {
    let (rows, cols, per_row) = (3_000, 120, 14);
    let mut rng = StdRng::seed_from_u64(0xC5);
    let mut builder = CsrBuilder::new(cols);
    let mut labels = Vec::with_capacity(rows);
    let mut idx = Vec::new();
    let mut val = Vec::new();
    for _ in 0..rows {
        idx.clear();
        val.clear();
        let mut score = 0.0;
        let mut c = rng.gen_range(0usize..4);
        while c < cols && idx.len() < per_row {
            let v = rng.gen_range(-1.0f64..1.0);
            idx.push(c as u32);
            val.push(v);
            if c < 10 {
                score += v * if c % 2 == 0 { 1.5 } else { -1.5 };
            }
            c += 1 + rng.gen_range(0usize..2 * (cols / per_row));
        }
        labels.push(f64::from(score >= 0.0));
        builder.push_row(&idx, &val).unwrap();
    }
    (builder.finish(), labels)
}

fn assert_bits_eq(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits(), "{x} != {y}");
    }
}

#[test]
fn mmap_backed_training_matches_in_memory_bit_for_bit() {
    let (matrix, labels) = big_sparse_problem();
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("big.m3csr");
    let mapped = m3::core::sparse::persist_csr(&path, &matrix, Some(&labels)).unwrap();

    // The file genuinely exceeds the chunk budget — the training sweep
    // cannot hold it in one chunk.
    let file_bytes = std::fs::metadata(&path).unwrap().len();
    assert!(
        file_bytes > 4 * CHUNK_BYTES as u64,
        "fixture too small: {file_bytes} bytes vs {CHUNK_BYTES} budget"
    );
    let ctx = ExecContext::new()
        .with_threads(2)
        .with_chunk_bytes(CHUNK_BYTES);
    let chunk_rows = ctx.sparse_chunk_rows(matrix.n_rows(), matrix.nnz());
    assert!(
        chunk_rows < matrix.n_rows() / 4,
        "sweeps must span many chunks (chunk_rows = {chunk_rows})"
    );

    // Logistic regression, the paper's protocol.
    let logistic = LogisticRegression::new(LogisticConfig::paper());
    let mem = logistic.fit_sparse(&matrix, &labels, &ctx).unwrap();
    let map = logistic.fit_sparse(&mapped, &labels, &ctx).unwrap();
    assert_bits_eq(&mem.weights, &map.weights);
    assert_eq!(mem.bias.to_bits(), map.bias.to_bits());
    assert_eq!(
        mem.optimization.value_history, map.optimization.value_history,
        "the whole loss trajectory must match, not just the optimum"
    );

    // Softmax over the same binary labels.
    let softmax = SoftmaxRegression::new(SoftmaxConfig {
        n_classes: 2,
        max_iterations: 8,
        ..Default::default()
    });
    let mem = softmax.fit_sparse(&matrix, &labels, &ctx).unwrap();
    let map = softmax.fit_sparse(&mapped, &labels, &ctx).unwrap();
    assert_bits_eq(&mem.weights, &map.weights);

    // Linear regression (normal equations run the sequential sparse driver).
    let linear = m3::ml::linear_regression::LinearRegression::default();
    let mem = linear.fit_sparse(&matrix, &labels, &ctx).unwrap();
    let map = linear.fit_sparse(&mapped, &labels, &ctx).unwrap();
    assert_bits_eq(&mem.weights, &map.weights);
    assert_eq!(mem.bias.to_bits(), map.bias.to_bits());
}

#[test]
fn mmap_backed_training_is_thread_count_invariant() {
    let (matrix, labels) = big_sparse_problem();
    let dir = tempfile::tempdir().unwrap();
    let mapped =
        m3::core::sparse::persist_csr(dir.path().join("t.m3csr"), &matrix, Some(&labels)).unwrap();
    let logistic = LogisticRegression::new(LogisticConfig::paper());
    let run = |threads: usize| {
        let ctx = ExecContext::new()
            .with_threads(threads)
            .with_chunk_bytes(CHUNK_BYTES)
            .with_parallel_threshold(0);
        logistic.fit_sparse(&mapped, &labels, &ctx).unwrap()
    };
    let one = run(1);
    for threads in [2, 4] {
        let multi = run(threads);
        assert_bits_eq(&one.weights, &multi.weights);
        assert_eq!(one.bias.to_bits(), multi.bias.to_bits());
    }
}

#[test]
fn libsvm_converts_without_densification_and_trains_out_of_core() {
    // The acceptance scenario: libsvm text → streaming binary CSR →
    // mmap-backed logistic training ≈ dense training on the same data.
    let (matrix, labels) = big_sparse_problem();
    let dir = tempfile::tempdir().unwrap();
    let text = dir.path().join("train.svm");
    let binary = dir.path().join("train.m3csr");
    m3::data::write_libsvm_csr(&text, &matrix, &labels).unwrap();

    let data = m3::data::convert_libsvm_to_csr(&text, &binary, Some(matrix.n_cols())).unwrap();
    assert_eq!(data.indptr(), matrix.indptr());
    assert_eq!(data.indices(), matrix.indices());
    assert_eq!(data.values(), matrix.values());
    let stored_labels = data.labels().unwrap().to_vec();
    assert_eq!(stored_labels, labels);

    let ctx = ExecContext::new().with_chunk_bytes(CHUNK_BYTES);
    let trainer = LogisticRegression::new(LogisticConfig::paper());
    let sparse_model = trainer.fit_sparse(&data, &stored_labels, &ctx).unwrap();
    let dense = matrix.to_dense();
    let dense_model = Estimator::fit(&trainer, &dense, &labels, &ctx).unwrap();
    for (a, b) in sparse_model.weights.iter().zip(&dense_model.weights) {
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + b.abs()),
            "sparse {a} vs dense {b}"
        );
    }
    assert!((sparse_model.bias - dense_model.bias).abs() <= 1e-9 * (1.0 + dense_model.bias.abs()));
    // And the model actually learned the planted signal.
    assert!(sparse_model.accuracy(&dense, &labels) > 0.9);
}
