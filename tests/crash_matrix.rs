//! Crash matrix: kill persistence at **every** durable I/O step and assert
//! the on-disk state is always either the intact previous artifact or no
//! artifact at all — never a half-visible file, and never a panic.
//!
//! The fault layer (`m3_core::faults`) counts the steps of one successful
//! build, then the matrix re-runs the build once per step with that step
//! failing.  Every failure must surface as a typed [`CoreError`] (wrapped
//! in the crate-appropriate error type), the `.tmp` staging file must be
//! gone, and whatever sits at the artifact path must still pass a full
//! checksum verification.
//!
//! The fault plan is process-global, so every test here serialises on one
//! mutex.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use m3::core::builder::DatasetBuilder;
use m3::core::faults::{self, FaultKind, FaultOp, FaultPlan};
use m3::core::{CoreError, CsrFile, CsrFileBuilder, Dataset, ModelFile};
use m3::ml::LinearModel;
use m3::serve::ModelRegistry;

/// The fault layer is process-global state; one case at a time.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One artifact family under test: how to build version `v` of it at
/// `path`, and how to reopen + checksum-verify whatever is on disk.
struct Family {
    name: &'static str,
    build: fn(&Path, u64) -> Result<(), String>,
    verify: fn(&Path) -> Result<(), String>,
}

fn build_dataset(path: &Path, version: u64) -> Result<(), String> {
    let mut b = DatasetBuilder::create(path, 3).map_err(|e| e.to_string())?;
    for r in 0..4u64 {
        let x = (version * 10 + r) as f64;
        b.push_row(&[x, x + 0.5, x + 0.25], Some(r as f64))
            .map_err(|e| e.to_string())?;
    }
    b.finish().map_err(|e| e.to_string()).map(|_| ())
}

fn verify_dataset(path: &Path) -> Result<(), String> {
    Dataset::open_verified(path)
        .map_err(|e| e.to_string())
        .map(|_| ())
}

fn build_csr(path: &Path, version: u64) -> Result<(), String> {
    let mut b = CsrFileBuilder::create(path, 3, 5, 4, true).map_err(|e| e.to_string())?;
    let v = version as f64;
    b.push_row(&[0, 3], &[v, v + 1.0], 1.0)
        .map_err(|e| e.to_string())?;
    b.push_row(&[2], &[v - 0.5], 0.0)
        .map_err(|e| e.to_string())?;
    b.push_row(&[4], &[2.0 * v], 1.0)
        .map_err(|e| e.to_string())?;
    b.finish().map_err(|e| e.to_string()).map(|_| ())
}

fn verify_csr(path: &Path) -> Result<(), String> {
    CsrFile::open_verified(path)
        .map_err(|e| e.to_string())
        .map(|_| ())
}

fn build_model(path: &Path, version: u64) -> Result<(), String> {
    let model = LinearModel {
        weights: vec![version as f64; 6].into(),
        bias: -(version as f64),
    };
    model.save(path).map_err(|e| e.to_string()).map(|_| ())
}

fn verify_model(path: &Path) -> Result<(), String> {
    ModelFile::open_verified(path)
        .map_err(|e| e.to_string())
        .map(|_| ())
}

fn build_graph(path: &Path, version: u64) -> Result<(), String> {
    let mut b = m3::core::GraphFileBuilder::create(path, 4, 5).map_err(|e| e.to_string())?;
    // Version-dependent adjacency so old and new images differ.
    let t = (version % 2) as u32;
    for row in [vec![1, 3], vec![], vec![t, 3], vec![2]] {
        b.push_node(&row).map_err(|e| e.to_string())?;
    }
    b.finish().map_err(|e| e.to_string()).map(|_| ())
}

fn verify_graph(path: &Path) -> Result<(), String> {
    m3::core::GraphFile::open_verified(path)
        .map_err(|e| e.to_string())
        .map(|_| ())
}

const FAMILIES: [Family; 4] = [
    Family {
        name: "dataset",
        build: build_dataset,
        verify: verify_dataset,
    },
    Family {
        name: "csr",
        build: build_csr,
        verify: verify_csr,
    },
    Family {
        name: "model",
        build: build_model,
        verify: verify_model,
    },
    Family {
        name: "graph",
        build: build_graph,
        verify: verify_graph,
    },
];

/// Steps of one successful build, restricted to `op` (None = all).
fn count_steps(family: &Family, op: Option<FaultOp>) -> u64 {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("count.bin");
    faults::arm(FaultPlan {
        trigger_at: None,
        kind: FaultKind::Fail,
        op,
    });
    let built = (family.build)(&path, 1);
    let report = faults::disarm();
    built.unwrap_or_else(|e| panic!("{}: counting build failed: {e}", family.name));
    assert!(!report.triggered);
    report.matching_steps
}

/// After an interrupted rebuild of `path`, the disk must hold either the
/// intact old artifact, the intact new one (the fault hit after the atomic
/// publish), or nothing — and no `.tmp` litter.
fn assert_consistent(
    family: &Family,
    path: &Path,
    old_bytes: &[u8],
    new_bytes: &[u8],
    context: &str,
) {
    let tmp = faults::tmp_sibling(path);
    assert!(
        !tmp.exists(),
        "{}: {context}: staging file {} left behind",
        family.name,
        tmp.display()
    );
    if !path.exists() {
        return;
    }
    let on_disk = std::fs::read(path).unwrap();
    assert!(
        on_disk == old_bytes || on_disk == new_bytes,
        "{}: {context}: artifact is neither the old nor the new version",
        family.name
    );
    (family.verify)(path).unwrap_or_else(|e| {
        panic!(
            "{}: {context}: surviving artifact fails verification: {e}",
            family.name
        )
    });
}

/// Byte image of version `v` of `family`, built cleanly.  Builds are
/// deterministic, so this is the exact image an uninterrupted rebuild would
/// publish.
fn clean_image(family: &Family, version: u64) -> Vec<u8> {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("image.bin");
    (family.build)(&path, version).unwrap();
    std::fs::read(&path).unwrap()
}

/// The full matrix for one family and one fault kind: fail (or short-write)
/// each step of a rebuild over an existing artifact, then each step of a
/// fresh build with no previous artifact.
fn run_matrix(family: &Family, kind: FaultKind, op: Option<FaultOp>) {
    let steps = count_steps(family, op);
    assert!(
        steps >= 3,
        "{}: expected several fault-injectable steps, saw {steps}",
        family.name
    );
    let old_bytes = clean_image(family, 1);
    let new_bytes = clean_image(family, 2);

    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("artifact.bin");

    for step in 0..steps {
        // Rebuild over an existing good artifact.
        std::fs::write(&path, &old_bytes).unwrap();
        faults::arm(FaultPlan {
            trigger_at: Some(step),
            kind,
            op,
        });
        let result = (family.build)(&path, 2);
        let report = faults::disarm();
        assert!(report.triggered, "{}: step {step} never ran", family.name);
        let err = result.expect_err(&format!(
            "{}: build survived an injected fault at step {step}",
            family.name
        ));
        assert!(
            err.contains("injected fault"),
            "{}: step {step}: expected a typed injected-fault error, got: {err}",
            family.name
        );
        assert_consistent(
            family,
            &path,
            &old_bytes,
            &new_bytes,
            &format!("rebuild, fault at step {step}"),
        );

        // Fresh build with no previous artifact: the path must stay absent
        // unless the fault landed after the publish.
        let fresh = dir.path().join(format!("fresh-{step}.bin"));
        faults::arm(FaultPlan {
            trigger_at: Some(step),
            kind,
            op,
        });
        let result = (family.build)(&fresh, 2);
        faults::disarm();
        assert!(result.is_err());
        assert_consistent(
            family,
            &fresh,
            &[],
            &new_bytes,
            &format!("fresh build, fault at step {step}"),
        );
    }

    // A clean rebuild right after the matrix must succeed and verify: the
    // failed runs leaked no global state.
    (family.build)(&path, 3).unwrap();
    (family.verify)(&path).unwrap();
}

#[test]
fn every_failed_step_leaves_an_intact_or_absent_artifact() {
    let _guard = serial();
    for family in &FAMILIES {
        run_matrix(family, FaultKind::Fail, None);
    }
}

#[test]
fn torn_writes_never_publish_a_corrupt_artifact() {
    let _guard = serial();
    for family in &FAMILIES {
        // Only buffered/direct writes can tear; mapped builders (csr,
        // model) may have no Write steps after creation — skip those.
        let writes = {
            let dir = tempfile::tempdir().unwrap();
            let path = dir.path().join("w.bin");
            faults::arm(FaultPlan {
                trigger_at: None,
                kind: FaultKind::Fail,
                op: Some(FaultOp::Write),
            });
            let built = (family.build)(&path, 1);
            let report = faults::disarm();
            built.unwrap();
            report.matching_steps
        };
        if writes > 0 {
            run_matrix(family, FaultKind::ShortWrite, Some(FaultOp::Write));
        }
    }
}

#[test]
fn reopening_after_every_fault_yields_typed_errors_never_panics() {
    let _guard = serial();
    // Interrupt a dataset build at its very first step, then throw every
    // reader at the leftovers: all must return typed errors.
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("never-built.m3ds");
    faults::arm(FaultPlan::fail_at(0, None));
    assert!(build_dataset(&path, 1).is_err());
    faults::disarm();
    assert!(!path.exists());
    assert!(matches!(
        Dataset::open(&path),
        Err(CoreError::Io { .. } | CoreError::BadHeader { .. })
    ));
    assert!(CsrFile::open(&path).is_err());
    assert!(ModelFile::open(&path).is_err());
    assert!(m3::core::GraphFile::open(&path).is_err());
}

#[test]
fn truncated_or_corrupt_graph_files_are_refused() {
    let _guard = serial();
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("adjacency.m3g");
    build_graph(&path, 1).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Chop the indices section short: open must report the size mismatch.
    std::fs::write(&path, &bytes[..bytes.len() - 512]).unwrap();
    let err = m3::core::GraphFile::open(&path);
    if std::env::var_os("M3_VERIFY").is_some_and(|v| v != "0") {
        assert!(err.is_err(), "M3_VERIFY open accepted a truncated graph");
    } else {
        assert!(
            matches!(err, Err(CoreError::SizeMismatch { .. })),
            "expected a size mismatch, got: {err:?}"
        );
    }

    // Flip one neighbor id: the header still parses, so only the checksum
    // sweep can refuse the file.
    let mut flipped = bytes.clone();
    let indices_offset = {
        let graph = {
            std::fs::write(&path, &bytes).unwrap();
            m3::core::GraphFile::open(&path).unwrap()
        };
        graph.header().indices_offset as usize
    };
    flipped[indices_offset + 2] ^= 0x11;
    std::fs::write(&path, &flipped).unwrap();
    let err = m3::core::GraphFile::open_verified(&path).unwrap_err();
    assert!(
        matches!(err, CoreError::ChecksumMismatch { ref section, .. } if section == "indices"),
        "expected an indices checksum mismatch, got: {err}"
    );
}

#[test]
fn corrupted_sections_are_caught_before_the_registry_publishes() {
    let _guard = serial();
    let dir = tempfile::tempdir().unwrap();
    let good = dir.path().join("good.m3m");
    let corrupt = dir.path().join("corrupt.m3m");
    build_model(&good, 1).unwrap();
    build_model(&corrupt, 2).unwrap();

    // Flip one payload byte past the header page; the header still parses,
    // so only the checksum pass can catch this.
    let mut bytes = std::fs::read(&corrupt).unwrap();
    let payload = 4096 + 17;
    bytes[payload] ^= 0x40;
    std::fs::write(&corrupt, &bytes).unwrap();

    // The corruption is in the payload, invisible to header validation: a
    // plain open succeeds — unless M3_VERIFY is set process-wide (as the
    // CI fault-injection job does), which folds the checksum pass into
    // every open.
    let plain = ModelFile::open(&corrupt);
    if std::env::var_os("M3_VERIFY").is_some_and(|v| v != "0") {
        assert!(plain.is_err(), "M3_VERIFY open accepted a corrupt payload");
    } else {
        plain.unwrap();
    }
    let err = ModelFile::open_verified(&corrupt).unwrap_err();
    assert!(
        matches!(err, CoreError::ChecksumMismatch { ref section, .. } if section == "payload"),
        "expected a payload checksum mismatch, got: {err}"
    );

    // The serving registry always verifies: the corrupt artifact is
    // rejected before any reader can observe it, the last good model keeps
    // serving, and health degrades until a good swap lands.
    let registry = ModelRegistry::open(&good).unwrap();
    assert_eq!(registry.version(), 1);
    let swap_err = registry.swap_from(&corrupt).unwrap_err();
    assert!(swap_err.to_string().contains("checksum mismatch"));
    assert_eq!(registry.version(), 1, "failed swap must not publish");
    assert_eq!(registry.current().source, good);
    let health = registry.health();
    assert!(health.degraded());
    assert!(health
        .last_swap_error
        .unwrap()
        .contains("checksum mismatch"));

    // A later good swap clears the degradation.
    registry.swap_from(&good).unwrap();
    assert!(!registry.health().degraded());
    assert_eq!(registry.version(), 2);
}

#[test]
fn delay_faults_slow_but_do_not_break_persistence() {
    let _guard = serial();
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("slow.m3ds");
    faults::arm(FaultPlan {
        trigger_at: Some(0),
        kind: FaultKind::Delay(std::time::Duration::from_millis(5)),
        op: None,
    });
    build_dataset(&path, 1).unwrap();
    let report = faults::disarm();
    assert!(report.triggered);
    verify_dataset(&path).unwrap();
}

#[test]
fn fault_log_names_every_durable_step_of_a_model_save() {
    let _guard = serial();
    let dir = tempfile::tempdir().unwrap();
    let path: PathBuf = dir.path().join("logged.m3m");
    faults::arm(FaultPlan::count_only());
    build_model(&path, 1).unwrap();
    let report = faults::disarm();
    let ops: Vec<FaultOp> = report.log.iter().map(|s| s.op).collect();
    // A mapped-builder save: pre-size, msync, fsync, publish, durable dir.
    for needed in [
        FaultOp::SetLen,
        FaultOp::FlushMap,
        FaultOp::SyncFile,
        FaultOp::Rename,
        FaultOp::SyncDir,
    ] {
        assert!(
            ops.contains(&needed),
            "model save never performed {needed:?}; log: {ops:?}"
        );
    }
    // Every step acted on the staging file or its directory — the final
    // path only ever appears as a rename target.
    let tmp = faults::tmp_sibling(&path);
    for step in &report.log {
        assert!(
            step.path == tmp || step.path == dir.path(),
            "step {:?} acted on unexpected path {}",
            step.op,
            step.path.display()
        );
    }
}
