//! Out-of-core graph analytics: generate an R-MAT graph on disk, run the
//! sweep-based engine over the memory-mapped container with a chunk budget
//! far smaller than the file, and assert the results are **bit-identical**
//! across thread counts and across mem-vs-mmap backings — plus parity
//! between the deprecated single-threaded engine and the new one.

use m3::core::{AdjacencyStore, ExecContext, GraphFile, PAGE_SIZE};
use m3::data::{generate_rmat, RmatConfig};
use m3::graph::analytics::{
    connected_components, degree_stats, pagerank_pull, pagerank_push, triangle_count,
    PageRankConfig,
};
use m3::graph::CsrGraph;

fn fixture(dir: &tempfile::TempDir) -> (GraphFile, CsrGraph) {
    let path = dir.path().join("rmat.m3g");
    let cfg = RmatConfig::new(12, 40_000)
        .with_seed(42)
        .with_mem_budget(64 << 10);
    let summary = generate_rmat(&path, &cfg).unwrap();
    assert!(summary.written_edges > 50_000, "symmetric R-MAT fixture");
    let mapped = GraphFile::open_verified(&path).unwrap();
    let in_memory =
        CsrGraph::from_parts(mapped.indptr().to_vec(), mapped.indices().to_vec()).unwrap();
    (mapped, in_memory)
}

/// A context whose chunk budget (one page) is hundreds of times smaller
/// than the fixture file, so every sweep is genuinely chunked.
fn ctx(threads: usize) -> ExecContext {
    ExecContext::new()
        .with_threads(threads)
        .with_chunk_bytes(PAGE_SIZE)
        .with_parallel_threshold(0)
}

fn fixed_iterations() -> PageRankConfig {
    PageRankConfig {
        tolerance: 0.0,
        max_iterations: 15,
        ..Default::default()
    }
}

#[test]
fn pagerank_is_bit_identical_across_threads_and_backings() {
    let dir = tempfile::tempdir().unwrap();
    let (mapped, in_memory) = fixture(&dir);
    let reference = pagerank_pull(&mapped, &fixed_iterations(), &ctx(1));
    let sum: f64 = reference.scores.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9, "scores must stay a distribution");

    for threads in [1usize, 2, 4] {
        let on_mapped = pagerank_pull(&mapped, &fixed_iterations(), &ctx(threads));
        let on_memory = pagerank_pull(&in_memory, &fixed_iterations(), &ctx(threads));
        for (label, run) in [("mmap", &on_mapped), ("mem", &on_memory)] {
            assert_eq!(run.scores.len(), reference.scores.len());
            let identical = run
                .scores
                .iter()
                .zip(&reference.scores)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(identical, "pull scores drifted: {threads} threads, {label}");
        }
    }
}

#[test]
fn push_and_pull_agree_and_push_matches_the_deprecated_engine() {
    let dir = tempfile::tempdir().unwrap();
    let (mapped, in_memory) = fixture(&dir);
    let push = pagerank_push(&mapped, &fixed_iterations(), &ctx(4));
    let pull = pagerank_pull(&mapped, &fixed_iterations(), &ctx(4));
    for (a, b) in push.scores.iter().zip(&pull.scores) {
        assert!((a - b).abs() < 1e-12, "push {a} vs pull {b}");
    }

    // The push variant reproduces the deprecated engine's accumulation order
    // exactly, over both backings.
    #[allow(deprecated)]
    let old = m3::graph::pagerank::pagerank(&in_memory, &fixed_iterations());
    assert_eq!(old.scores, push.scores);
    let push_mem = pagerank_push(&in_memory, &fixed_iterations(), &ctx(2));
    assert_eq!(old.scores, push_mem.scores);
}

#[test]
fn connected_components_are_bit_identical_and_match_the_deprecated_engine() {
    let dir = tempfile::tempdir().unwrap();
    let (mapped, in_memory) = fixture(&dir);
    let reference = connected_components(&mapped, &ctx(1));
    for threads in [2usize, 4] {
        assert_eq!(
            connected_components(&mapped, &ctx(threads)).labels,
            reference.labels,
            "labels drifted at {threads} threads"
        );
    }
    assert_eq!(
        connected_components(&in_memory, &ctx(4)).labels,
        reference.labels,
        "labels differ between backings"
    );

    #[allow(deprecated)]
    let old = m3::graph::components::connected_components(&in_memory);
    assert_eq!(old.labels, reference.labels);
    assert_eq!(old.n_components, reference.n_components);
}

#[test]
fn statistics_agree_across_backings_and_thread_counts() {
    let dir = tempfile::tempdir().unwrap();
    let (mapped, in_memory) = fixture(&dir);
    let stats = degree_stats(&mapped, &ctx(4));
    assert_eq!(stats, degree_stats(&in_memory, &ctx(1)));
    assert_eq!(stats.n_nodes, 1 << 12);
    assert_eq!(stats.n_edges, mapped.n_edges());
    assert!(stats.max_degree > stats.min_degree, "R-MAT must be skewed");

    let triangles = triangle_count(&mapped, &ctx(4));
    assert_eq!(triangles, triangle_count(&in_memory, &ctx(1)));
    assert!(triangles > 0, "a dense-core R-MAT graph has triangles");
}
