//! Integration tests asserting the *shape* of every reproduced experiment:
//! who wins, by roughly what factor, and where the crossovers fall.  These are
//! the machine-checked versions of the claims recorded in EXPERIMENTS.md.

use m3::vmsim::SimConfig;
use m3_bench::workload::{Algorithm, SweepProfile};
use m3_bench::{fig1a, fig1b, paper_numbers, FIG1A_SIZES_GB};

fn measured_profile() -> SweepProfile {
    SweepProfile::measure(250, paper_numbers::ITERATIONS, 7)
}

#[test]
fn e2_figure_1a_linear_scaling_with_steeper_out_of_core_slope() {
    let result = fig1a::run_sweep(
        &FIG1A_SIZES_GB,
        &measured_profile(),
        &SimConfig::paper_machine(),
    );

    // Runtime grows monotonically with dataset size.
    for pair in result.points.windows(2) {
        assert!(pair[1].runtime_seconds > pair[0].runtime_seconds);
    }
    // Both regimes are close to linear and the out-of-core slope is much steeper.
    let in_ram = result.in_ram_fit.expect("in-RAM fit");
    let out = result.out_of_core_fit.expect("out-of-core fit");
    assert!(in_ram.r_squared > 0.95);
    assert!(out.r_squared > 0.95);
    assert!(out.slope > 2.0 * in_ram.slope);

    // The 190 GB point lands in the same ballpark as the paper's 1950 s.
    let last = result.points.last().unwrap();
    assert!(last.runtime_seconds > 0.5 * paper_numbers::LR_M3);
    assert!(last.runtime_seconds < 2.0 * paper_numbers::LR_M3);
}

#[test]
fn e5_out_of_core_runs_are_io_bound_with_low_cpu_utilisation() {
    let result = fig1a::run_sweep(
        &FIG1A_SIZES_GB,
        &measured_profile(),
        &SimConfig::paper_machine(),
    );
    for point in result.points.iter().filter(|p| p.out_of_core) {
        assert!(point.io_utilization > 0.95, "disk should be ~100% busy");
        assert!(point.cpu_utilization < 0.25, "CPU should be lightly used");
    }
}

#[test]
fn e3_e4_figure_1b_orderings_and_ratios() {
    let result = fig1b::run_comparison(
        paper_numbers::DATASET_GB,
        &measured_profile(),
        &SimConfig::paper_machine(),
    );

    for (algorithm, paper_m3, paper_8, paper_4) in [
        (
            Algorithm::LogisticRegression,
            paper_numbers::LR_M3,
            paper_numbers::LR_SPARK_8,
            paper_numbers::LR_SPARK_4,
        ),
        (
            Algorithm::KMeans,
            paper_numbers::KM_M3,
            paper_numbers::KM_SPARK_8,
            paper_numbers::KM_SPARK_4,
        ),
    ] {
        let m3_time = result.m3_seconds(algorithm);
        let spark4 = result.get(algorithm, "4x Spark").unwrap().runtime_seconds;
        let spark8 = result.get(algorithm, "8x Spark").unwrap().runtime_seconds;

        // Ordering: M3 fastest, then 8-instance, then 4-instance Spark.
        assert!(
            m3_time < spark8,
            "{algorithm:?}: M3 {m3_time} vs 8x {spark8}"
        );
        assert!(spark8 < spark4);

        // Rough factors match the paper within a factor of ~1.6.
        let paper_ratio_4 = paper_4 / paper_m3;
        let ratio_4 = spark4 / m3_time;
        assert!(
            ratio_4 > paper_ratio_4 / 1.6 && ratio_4 < paper_ratio_4 * 1.6,
            "{algorithm:?}: 4x ratio {ratio_4:.2} vs paper {paper_ratio_4:.2}"
        );
        let paper_ratio_8 = paper_8 / paper_m3;
        let ratio_8 = spark8 / m3_time;
        assert!(
            ratio_8 > paper_ratio_8 / 1.6 && ratio_8 < paper_ratio_8 * 1.6,
            "{algorithm:?}: 8x ratio {ratio_8:.2} vs paper {paper_ratio_8:.2}"
        );

        // Absolute numbers within 2x of the published ones.
        for (simulated, paper) in [(m3_time, paper_m3), (spark4, paper_4), (spark8, paper_8)] {
            assert!(simulated > 0.5 * paper && simulated < 2.0 * paper);
        }
    }
}

#[test]
fn e8_ablations_read_ahead_and_device_speed_matter() {
    let readahead = m3_bench::ablation::readahead_ablation(190.0, 10);
    assert!(readahead[0].wall_seconds < readahead[1].wall_seconds);

    let devices = m3_bench::ablation::device_sweep(190.0, 10);
    let first = devices.first().unwrap();
    let last = devices.last().unwrap();
    assert!(first.label.contains("HDD"));
    assert!(
        last.wall_seconds < first.wall_seconds / 5.0,
        "fast flash should crush the HDD"
    );
}

#[test]
fn e1_table1_models_identical_across_storage_backends() {
    let dir = tempfile::tempdir().unwrap();
    let result = m3_bench::table1::demonstrate(dir.path(), 400, 3);
    assert!(result.max_weight_difference < 1e-10);
    assert!(result.in_memory_accuracy > 0.9);
}

#[test]
fn e7_graph_extension_results_match_across_backends() {
    let dir = tempfile::tempdir().unwrap();
    let experiment = m3_bench::graphs::run(dir.path(), 11, 5, 1);
    assert!(experiment.pagerank_results_match);
    assert!(experiment.components_results_match);
    assert_eq!(experiment.rows.len(), 4);
}
