//! The Table 1 claim, enforced generically: every estimator in the workspace
//! produces a **bit-identical** model whether its rows live in a
//! `DenseMatrix` (RAM), an `MmapMatrix` (raw memory-mapped file) or a
//! `Dataset` (memory-mapped container) — because the `Estimator` API routes
//! every data sweep through one `ExecContext`, whose chunking and reduction
//! order depend only on the data's shape.
//!
//! Also holds the `dyn`-compatibility smoke tests for the `Model` trait and
//! the boxed/erased `RowStore` forms.

use m3::prelude::*;

/// The three storage backings of the same logical matrix.
struct Backings {
    dense: DenseMatrix,
    mapped: MmapMatrix,
    dataset: Dataset,
    labels: Vec<f64>,
    // Keeps the mapped files alive for the duration of the test.
    _dir: tempfile::TempDir,
}

/// Materialise `rows` rows of `generator` into all three backings.
fn backings<G: RowGenerator>(generator: &G, rows: usize) -> Backings {
    let dir = tempfile::tempdir().unwrap();
    let (dense, labels) = generator.materialize(rows);

    let raw = dir.path().join("parity.m3");
    m3::data::writer::write_raw_matrix(generator, &raw, rows).unwrap();
    let mapped = mmap_alloc(&raw, rows, dense.n_cols()).unwrap();

    let container = dir.path().join("parity.m3ds");
    m3::data::writer::write_dataset(generator, &container, rows as u64).unwrap();
    let dataset = Dataset::open(&container).unwrap();

    Backings {
        dense,
        mapped,
        dataset,
        labels,
        _dir: dir,
    }
}

/// Train `estimator` over all three backings with the same context and hand
/// the three models to `check`, which asserts their parameters are
/// bit-identical.
fn assert_parity<E, G, F>(generator: &G, rows: usize, estimator: &E, check: F)
where
    E: Estimator,
    G: RowGenerator,
    F: Fn(&E::Model, &E::Model),
{
    let b = backings(generator, rows);
    // Exercise the parallel path with small chunks so multiple chunks exist
    // even at test scale, and disable the serial-fallback work threshold so
    // the worker pool actually runs; determinism must hold regardless.
    let ctx = ExecContext::new()
        .with_threads(4)
        .with_chunk_bytes(m3::core::PAGE_SIZE)
        .with_parallel_threshold(0);
    let on_dense = Estimator::fit(estimator, &b.dense, &b.labels, &ctx).unwrap();
    let on_mapped = Estimator::fit(estimator, &b.mapped, &b.labels, &ctx).unwrap();
    let on_dataset = Estimator::fit(estimator, &b.dataset, &b.labels, &ctx).unwrap();
    check(&on_dense, &on_mapped);
    check(&on_dense, &on_dataset);
}

fn assert_bits_eq(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits(), "{x} != {y}");
    }
}

#[test]
fn logistic_regression_parity() {
    let generator = LinearProblem::random_classification(10, 0.05, 31);
    let estimator = LogisticRegression::new(LogisticConfig {
        max_iterations: 25,
        ..Default::default()
    });
    assert_parity(&generator, 240, &estimator, |a, b| {
        assert_bits_eq(&a.weights, &b.weights);
        assert_eq!(a.bias.to_bits(), b.bias.to_bits());
    });
}

#[test]
fn softmax_regression_parity() {
    let generator = GaussianBlobs::new(4, 6, 12.0, 1.0, 8);
    let estimator = SoftmaxRegression::new(SoftmaxConfig {
        n_classes: 4,
        max_iterations: 15,
        ..Default::default()
    });
    assert_parity(&generator, 200, &estimator, |a, b| {
        assert_bits_eq(&a.weights, &b.weights);
    });
}

#[test]
fn linear_regression_parity_both_solvers() {
    let generator = LinearProblem::regression(vec![2.0, -1.0, 0.5, 0.25], 3.0, 0.05, 17);
    for solver in [
        m3::ml::linear_regression::Solver::NormalEquations,
        m3::ml::linear_regression::Solver::GradientDescent,
    ] {
        let estimator = m3::ml::linear_regression::LinearRegression::new(
            m3::ml::linear_regression::LinearRegressionConfig {
                solver,
                max_iterations: 300,
                ..Default::default()
            },
        );
        assert_parity(&generator, 180, &estimator, |a, b| {
            assert_bits_eq(&a.weights, &b.weights);
            assert_eq!(a.bias.to_bits(), b.bias.to_bits());
        });
    }
}

#[test]
fn gaussian_naive_bayes_parity() {
    let generator = GaussianBlobs::new(3, 5, 10.0, 1.2, 23);
    let estimator = m3::ml::naive_bayes::GaussianNbTrainer::new(3);
    assert_parity(&generator, 210, &estimator, |a, b| {
        assert_bits_eq(&a.means, &b.means);
        assert_bits_eq(&a.variances, &b.variances);
        assert_bits_eq(&a.log_priors, &b.log_priors);
    });
}

#[test]
fn kmeans_parity() {
    let generator = GaussianBlobs::new(5, 8, 25.0, 1.5, 5);
    // Through the blanket UnsupervisedEstimator→Estimator adapter, so the
    // same generic harness covers the unsupervised estimators.
    let estimator = KMeans::new(KMeansConfig {
        k: 5,
        max_iterations: 8,
        tolerance: 0.0,
        seed: 71,
        ..Default::default()
    });
    assert_parity(&generator, 260, &estimator, |a, b| {
        assert_bits_eq(a.centroids.as_slice(), b.centroids.as_slice());
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
    });
}

#[test]
fn standard_scaler_parity() {
    let generator = GaussianBlobs::new(2, 7, 6.0, 2.0, 41);
    assert_parity(&generator, 230, &StandardScaler, |a, b| {
        assert_bits_eq(&a.mean, &b.mean);
        assert_bits_eq(&a.std_dev, &b.std_dev);
    });
}

#[test]
fn parity_holds_across_thread_counts_too() {
    // Storage parity is necessary; the ExecContext also guarantees the result
    // does not depend on how many workers processed the chunks.
    let generator = LinearProblem::random_classification(6, 0.05, 13);
    let (x, y) = generator.materialize(300);
    let estimator = LogisticRegression::new(LogisticConfig {
        max_iterations: 20,
        ..Default::default()
    });
    let run = |threads: usize| {
        Estimator::fit(
            &estimator,
            &x,
            &y,
            &ExecContext::new()
                .with_threads(threads)
                .with_chunk_bytes(m3::core::PAGE_SIZE)
                .with_parallel_threshold(0),
        )
        .unwrap()
    };
    let one = run(1);
    for threads in [2, 3, 8] {
        let multi = run(threads);
        assert_bits_eq(&one.weights, &multi.weights);
        assert_eq!(one.bias.to_bits(), multi.bias.to_bits());
    }
}

#[test]
fn model_trait_is_dyn_compatible_across_all_models() {
    let dir = tempfile::tempdir().unwrap();
    let ctx = ExecContext::new();

    // A classification problem every model family can train on.
    let generator = GaussianBlobs::new(3, 6, 15.0, 1.0, 3);
    let (x, y) = generator.materialize(150);

    let logistic_y: Vec<f64> = y.iter().map(|&l| if l < 1.5 { 0.0 } else { 1.0 }).collect();
    let models: Vec<Box<dyn Model>> = vec![
        Box::new(
            Estimator::fit(
                &LogisticRegression::new(LogisticConfig::default()),
                &x,
                &logistic_y,
                &ctx,
            )
            .unwrap(),
        ),
        Box::new(
            Estimator::fit(
                &SoftmaxRegression::new(SoftmaxConfig {
                    n_classes: 3,
                    max_iterations: 20,
                    ..Default::default()
                }),
                &x,
                &y,
                &ctx,
            )
            .unwrap(),
        ),
        Box::new(
            Estimator::fit(
                &m3::ml::linear_regression::LinearRegression::default(),
                &x,
                &y,
                &ctx,
            )
            .unwrap(),
        ),
        Box::new(
            Estimator::fit(
                &m3::ml::naive_bayes::GaussianNbTrainer::new(3),
                &x,
                &y,
                &ctx,
            )
            .unwrap(),
        ),
        Box::new(
            UnsupervisedEstimator::fit(
                &KMeans::new(KMeansConfig {
                    k: 3,
                    ..Default::default()
                }),
                &x,
                &ctx,
            )
            .unwrap(),
        ),
    ];

    // Every erased model predicts over every backing through &dyn RowStore.
    let mapped = m3::core::alloc::persist_matrix(dir.path().join("dyn.m3"), &x).unwrap();
    for model in &models {
        assert_eq!(model.n_features(), 6);
        let from_dense = model.predict_batch(&x);
        let from_mapped = model.predict_batch(&mapped);
        assert_eq!(from_dense.len(), 150);
        assert_eq!(from_dense, from_mapped);
        for (r, p) in from_dense.iter().enumerate().take(10) {
            assert_eq!(*p, model.predict_row(x.row(r)));
        }
        // score() is callable through the erased interface for all of them.
        let _ = model.score(&x, &y);
    }
}

// --- sparse vs dense estimator parity ---------------------------------------
//
// A sparse store and its densified twin describe the same matrix, so the
// trained models must agree — up to floating-point summation order, since the
// sparse kernels skip the zero terms and therefore re-bracket every
// reduction.  The tests below bound that divergence tightly (relative 1e-9
// after a full L-BFGS/GD run) and additionally require the sparse path to be
// **bit-identical** across thread counts 1/2/4 and across the in-memory /
// memory-mapped backings, mirroring the dense guarantee.  (These tests match
// the `*parity*` filter, so the forced-scalar re-exec below covers them on
// the portable kernel path too.)

/// A deterministic sparse classification problem: CSR, densified twin,
/// mmap-backed copy and labels.
struct SparseBackings {
    csr: CsrMatrix,
    dense: DenseMatrix,
    mapped: m3::core::CsrFile,
    labels: Vec<f64>,
    _dir: tempfile::TempDir,
}

fn sparse_backings(rows: usize, cols: usize, seed: u64) -> SparseBackings {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = CsrBuilder::new(cols);
    let mut labels = Vec::with_capacity(rows);
    let mut idx = Vec::new();
    let mut val = Vec::new();
    for _ in 0..rows {
        idx.clear();
        val.clear();
        let mut score = 0.0;
        for c in 0..cols {
            if rng.gen_range(0.0f64..1.0) < 0.3 {
                let v = rng.gen_range(-1.5f64..1.5);
                idx.push(c as u32);
                val.push(v);
                score += v * if c % 2 == 0 { 1.0 } else { -1.0 };
            }
        }
        labels.push(f64::from(score >= 0.0));
        builder.push_row(&idx, &val).unwrap();
    }
    let csr = builder.finish();
    let dir = tempfile::tempdir().unwrap();
    let mapped =
        m3::core::sparse::persist_csr(dir.path().join("parity.m3csr"), &csr, Some(&labels))
            .unwrap();
    SparseBackings {
        dense: csr.to_dense(),
        csr,
        mapped,
        labels,
        _dir: dir,
    }
}

fn assert_rel_close(a: &[f64], b: &[f64], tol: f64) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert!(
            (x - y).abs() <= tol * (1.0 + y.abs()),
            "{x} vs {y} beyond relative {tol}"
        );
    }
}

/// Train `estimator` on the sparse backings across thread counts 1/2/4:
/// sparse results must be bit-identical to each other (threads *and*
/// in-memory vs mmap), and must agree with the dense twin within `tol`.
fn assert_sparse_parity<E, F, G>(b: &SparseBackings, estimator: &E, params: F, check_dense: G)
where
    E: SparseEstimator,
    F: Fn(&E::Model) -> Vec<f64>,
    G: Fn(&E::Model, &E::Model),
{
    let ctx_for = |threads: usize| {
        ExecContext::new()
            .with_threads(threads)
            .with_chunk_bytes(m3::core::PAGE_SIZE)
            .with_parallel_threshold(0)
    };
    let reference = estimator
        .fit_sparse(&b.csr, &b.labels, &ctx_for(1))
        .unwrap();
    for threads in [1usize, 2, 4] {
        let ctx = ctx_for(threads);
        let on_mem = estimator.fit_sparse(&b.csr, &b.labels, &ctx).unwrap();
        let on_map = estimator.fit_sparse(&b.mapped, &b.labels, &ctx).unwrap();
        assert_bits_eq(&params(&reference), &params(&on_mem));
        assert_bits_eq(&params(&reference), &params(&on_map));
        let on_dense = Estimator::fit(estimator, &b.dense, &b.labels, &ctx).unwrap();
        check_dense(&on_dense, &on_mem);
    }
}

#[test]
fn sparse_logistic_regression_parity() {
    let b = sparse_backings(220, 24, 101);
    let estimator = LogisticRegression::new(LogisticConfig {
        max_iterations: 25,
        ..Default::default()
    });
    assert_sparse_parity(
        &b,
        &estimator,
        |m| m.weights.to_vec(),
        |dense, sparse| {
            assert_rel_close(&dense.weights, &sparse.weights, 1e-9);
            assert!((dense.bias - sparse.bias).abs() <= 1e-9 * (1.0 + dense.bias.abs()));
        },
    );
}

#[test]
fn sparse_softmax_regression_parity() {
    let b = sparse_backings(200, 18, 67);
    // Reuse the binary labels as two classes.
    let estimator = SoftmaxRegression::new(SoftmaxConfig {
        n_classes: 2,
        max_iterations: 15,
        ..Default::default()
    });
    assert_sparse_parity(
        &b,
        &estimator,
        |m| m.weights.to_vec(),
        |dense, sparse| assert_rel_close(&dense.weights, &sparse.weights, 1e-9),
    );
}

#[test]
fn sparse_linear_regression_parity_both_solvers() {
    let b = sparse_backings(190, 14, 23);
    for solver in [
        m3::ml::linear_regression::Solver::NormalEquations,
        m3::ml::linear_regression::Solver::GradientDescent,
    ] {
        let estimator = m3::ml::linear_regression::LinearRegression::new(
            m3::ml::linear_regression::LinearRegressionConfig {
                solver,
                max_iterations: 300,
                ..Default::default()
            },
        );
        assert_sparse_parity(
            &b,
            &estimator,
            |m| m.weights.to_vec(),
            |dense, sparse| {
                assert_rel_close(&dense.weights, &sparse.weights, 1e-7);
                assert!((dense.bias - sparse.bias).abs() <= 1e-7 * (1.0 + dense.bias.abs()));
            },
        );
    }
}

#[test]
fn parity_suite_passes_under_forced_scalar_kernels() {
    // The kernel path is cached per process, so the scalar-path run needs a
    // fresh process: re-exec this test binary with M3_FORCE_SCALAR=1 and a
    // filter that picks up every `*parity*` test (this one included — it
    // short-circuits below in the child, so there is no recursion).
    if m3::linalg::dispatch::force_scalar_requested() {
        assert_eq!(
            m3::linalg::dispatch::active(),
            m3::linalg::KernelPath::Scalar,
            "M3_FORCE_SCALAR=1 must pin the scalar kernel path"
        );
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let output = std::process::Command::new(exe)
        .args(["parity", "--test-threads", "1"])
        .env("M3_FORCE_SCALAR", "1")
        .output()
        .expect("failed to re-exec the parity suite");
    assert!(
        output.status.success(),
        "parity suite failed under M3_FORCE_SCALAR=1:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

#[test]
fn estimators_accept_boxed_trait_object_stores() {
    // `impl RowStore for Box<T>` + the blanket `&T` impl mean an erased,
    // boxed store drops straight into the generic Estimator API.
    let generator = LinearProblem::random_classification(5, 0.05, 19);
    let (x, y) = generator.materialize(120);
    let erased: Box<dyn RowStore + Sync> = Box::new(x.clone());

    let estimator = LogisticRegression::new(LogisticConfig {
        max_iterations: 15,
        ..Default::default()
    });
    let ctx = ExecContext::new();
    let from_erased = Estimator::fit(&estimator, &erased, &y, &ctx).unwrap();
    let from_dense = Estimator::fit(&estimator, &x, &y, &ctx).unwrap();
    assert_bits_eq(&from_erased.weights, &from_dense.weights);
}

// --- artifact round-trip parity ----------------------------------------------
//
// The serving-side mirror of the storage parity above: saving a fitted model
// to an `M3MODL01` artifact and memory-mapping it back must not change a
// single prediction bit.  The loaded model's parameters are zero-copy views
// into the artifact, so these tests compare the two model *backings* (owned
// vs mapped) the way the earlier tests compare data backings — per-row
// predictions against pooled batch predictions at 1/2/4 worker threads.
// (Named `*parity*` so the forced-scalar re-exec covers them too.)

fn predict_ctx(threads: usize) -> ExecContext {
    ExecContext::new()
        .with_threads(threads)
        .with_chunk_bytes(m3::core::PAGE_SIZE)
        .with_parallel_threshold(0)
}

/// Per-row predictions of the in-memory model are the baseline; the pooled
/// batch path of both the in-memory and the artifact-mapped model must match
/// it bit for bit at every thread count.
fn assert_model_backing_parity<M: BatchPredict>(mem: &M, mapped: &M, x: &DenseMatrix) {
    let baseline: Vec<f64> = (0..x.n_rows()).map(|r| mem.predict_row(x.row(r))).collect();
    for threads in [1usize, 2, 4] {
        let ctx = predict_ctx(threads);
        assert_bits_eq(&baseline, &mem.predict_batch_ctx(x, &ctx));
        assert_bits_eq(&baseline, &mapped.predict_batch_ctx(x, &ctx));
    }
}

#[test]
fn saved_logistic_model_parity() {
    let dir = tempfile::tempdir().unwrap();
    let (x, y) = LinearProblem::random_classification(9, 0.05, 51).materialize(220);
    let mem = Estimator::fit(
        &LogisticRegression::new(LogisticConfig {
            max_iterations: 20,
            ..Default::default()
        }),
        &x,
        &y,
        &ExecContext::new(),
    )
    .unwrap();
    let path = dir.path().join("logistic.m3m");
    mem.save(&path).unwrap();
    let mapped = LogisticModel::load(&path).unwrap();
    assert!(mapped.weights.is_mapped());
    assert_model_backing_parity(&mem, &mapped, &x);
}

#[test]
fn saved_softmax_model_parity() {
    let dir = tempfile::tempdir().unwrap();
    let (x, y) = GaussianBlobs::new(4, 6, 12.0, 1.0, 9).materialize(240);
    let mem = Estimator::fit(
        &SoftmaxRegression::new(SoftmaxConfig {
            n_classes: 4,
            max_iterations: 15,
            ..Default::default()
        }),
        &x,
        &y,
        &ExecContext::new(),
    )
    .unwrap();
    let path = dir.path().join("softmax.m3m");
    mem.save(&path).unwrap();
    let mapped = SoftmaxModel::load(&path).unwrap();
    assert!(mapped.weights.is_mapped());
    assert_model_backing_parity(&mem, &mapped, &x);
}

#[test]
fn saved_linear_model_parity() {
    let dir = tempfile::tempdir().unwrap();
    let (x, y) =
        LinearProblem::regression(vec![2.0, -1.0, 0.5, 0.25], 3.0, 0.05, 27).materialize(200);
    let mem = Estimator::fit(
        &m3::ml::linear_regression::LinearRegression::default(),
        &x,
        &y,
        &ExecContext::new(),
    )
    .unwrap();
    let path = dir.path().join("linear.m3m");
    mem.save(&path).unwrap();
    let mapped = LinearModel::load(&path).unwrap();
    assert!(mapped.weights.is_mapped());
    assert_model_backing_parity(&mem, &mapped, &x);
}

#[test]
fn saved_gaussian_nb_model_parity() {
    let dir = tempfile::tempdir().unwrap();
    let (x, y) = GaussianBlobs::new(3, 5, 10.0, 1.2, 33).materialize(210);
    let mem = Estimator::fit(&GaussianNbTrainer::new(3), &x, &y, &ExecContext::new()).unwrap();
    let path = dir.path().join("nb.m3m");
    mem.save(&path).unwrap();
    let mapped = GaussianNb::load(&path).unwrap();
    assert!(mapped.means.is_mapped());
    assert_model_backing_parity(&mem, &mapped, &x);
}

#[test]
fn saved_kmeans_model_parity() {
    let dir = tempfile::tempdir().unwrap();
    let (x, _) = GaussianBlobs::new(5, 8, 25.0, 1.5, 61).materialize(260);
    let mem = UnsupervisedEstimator::fit(
        &KMeans::new(KMeansConfig {
            k: 5,
            max_iterations: 8,
            seed: 71,
            ..Default::default()
        }),
        &x,
        &ExecContext::new(),
    )
    .unwrap();
    let path = dir.path().join("kmeans.m3m");
    mem.save(&path).unwrap();
    let mapped = KMeansModel::load(&path).unwrap();
    assert!(mapped.centroids.is_mapped());
    assert_model_backing_parity(&mem, &mapped, &x);
}

#[test]
fn saved_standardizer_transform_parity() {
    let dir = tempfile::tempdir().unwrap();
    let (x, _) = GaussianBlobs::new(2, 7, 6.0, 2.0, 77).materialize(230);
    let mem = UnsupervisedEstimator::fit(&StandardScaler, &x, &ExecContext::new()).unwrap();
    let path = dir.path().join("scaler.m3m");
    mem.save(&path).unwrap();
    let mapped = Standardizer::load(&path).unwrap();
    assert!(mapped.mean.is_mapped() && mapped.std_dev.is_mapped());
    assert_bits_eq(&mem.mean, &mapped.mean);
    assert_bits_eq(&mem.std_dev, &mapped.std_dev);
    for r in 0..x.n_rows() {
        let mut a = x.row(r).to_vec();
        let mut b = a.clone();
        mem.transform_row(&mut a);
        mapped.transform_row(&mut b);
        assert_bits_eq(&a, &b);
    }
}

#[test]
fn load_model_erased_dispatch_parity() {
    // The server-side loader — kind-dispatched `Box<dyn Model + Send + Sync>`
    // — must agree bit for bit with the typed loaders it wraps.
    let dir = tempfile::tempdir().unwrap();
    let (x, y) = GaussianBlobs::new(3, 6, 15.0, 1.0, 29).materialize(180);
    let ctx = ExecContext::new();
    let binary: Vec<f64> = y.iter().map(|&l| f64::from(l >= 1.5)).collect();

    let logistic = Estimator::fit(
        &LogisticRegression::new(LogisticConfig::default()),
        &x,
        &binary,
        &ctx,
    )
    .unwrap();
    let kmeans = UnsupervisedEstimator::fit(
        &KMeans::new(KMeansConfig {
            k: 3,
            ..Default::default()
        }),
        &x,
        &ctx,
    )
    .unwrap();

    let typed_predictions = [logistic.predict(&x), Model::predict_batch(&kmeans, &x)];
    let paths = [dir.path().join("l.m3m"), dir.path().join("k.m3m")];
    logistic.save(&paths[0]).unwrap();
    kmeans.save(&paths[1]).unwrap();

    for (path, want) in paths.iter().zip(&typed_predictions) {
        let erased = load_model(path).unwrap();
        assert_bits_eq(want, &erased.predict_batch(&x));
        for threads in [1usize, 2, 4] {
            assert_bits_eq(want, &erased.predict_batch_ctx(&x, &predict_ctx(threads)));
        }
    }
}
