//! Kill/resume crash-recovery matrix for checkpointed training.
//!
//! The contract under test (see `m3_optim::checkpoint` and `m3_core::ckpt`):
//!
//! * Every durable step of a checkpoint publish can fail (fault injection
//!   via `m3_core::faults`) and the result is always a typed error, no
//!   `.tmp` staging litter, and no clobbered prior checkpoint.
//! * Training killed at arbitrary batch boundaries (a real `abort()` in a
//!   child process — no destructors) leaves an intact newest checkpoint,
//!   and **deterministic resume is bit-identical** to an uninterrupted run,
//!   across thread counts 1/2/4, in-memory and memory-mapped backings, and
//!   dense and CSR layouts.
//! * Corrupt, torn or truncated checkpoints are skipped with typed errors
//!   during the resume scan — never a panic — falling back to the newest
//!   older intact snapshot.
//! * Divergence aborts with `OptimError::Diverged` and never checkpoints a
//!   non-finite state.

use std::path::Path;
use std::sync::{Mutex, PoisonError};

use m3::core::ckpt::{
    checkpoint_path, find_latest_intact, list_checkpoints, write_checkpoint, CheckpointFile,
    TrainProgress,
};
use m3::core::faults::{self, FaultKind, FaultOp, FaultPlan};
use m3::core::CoreError;
use m3::ml::MlError;
use m3::prelude::*;

const SEED: u64 = 0x5eed_c4c7;

/// The fault layer is process-global state; fault-arming tests serialise.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Dense classification fixture (the `sgd_convergence` battery's).
fn dense_problem(n: usize) -> (DenseMatrix, Vec<f64>) {
    let generator = LinearProblem::classification(vec![1.5, -2.0, 0.5, 0.25, -1.0], 0.3, 0.05, 77);
    generator.materialize(n)
}

/// The dense fixture with ~2/3 of its entries zeroed, as CSR + dense twin.
fn sparse_problem(n: usize) -> (CsrMatrix, Vec<f64>) {
    let (x, y) = dense_problem(n);
    let mut data = x.as_slice().to_vec();
    for (i, v) in data.iter_mut().enumerate() {
        if (i * 2654435761) % 3 != 0 {
            *v = 0.0;
        }
    }
    let dense = DenseMatrix::from_vec(data, x.n_rows(), x.n_cols()).unwrap();
    (CsrMatrix::from_dense(&dense), y)
}

fn sgd_config(epochs: usize) -> AsyncSgd {
    AsyncSgd::new()
        .learning_rate(0.5)
        .batch_size(32)
        .epochs(epochs)
        .seed(SEED)
}

fn trainer_with(sgd: AsyncSgd) -> LogisticRegression {
    LogisticRegression::new(LogisticConfig {
        solver: Solver::Sgd(sgd),
        ..Default::default()
    })
}

fn ctx_with(threads: usize) -> ExecContext {
    ExecContext::new().with_threads(threads)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
    }
}

fn assert_no_tmp_litter(dir: &Path) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let name = entry.unwrap().file_name();
        assert!(
            !name.to_string_lossy().ends_with(".tmp"),
            "staging litter left behind: {name:?}"
        );
    }
}

fn sample_progress() -> TrainProgress {
    TrainProgress {
        epoch: 1,
        next_batch: 2,
        n_examples: 64,
        seed: 7,
        batch_size: 8,
        epochs: 4,
        eval_every: 1,
        sampling: 1,
        mode: 0,
        learning_rate: 0.1,
        decay: 0.01,
        evaluations: 10,
        sequence: 0,
    }
}

/// Durable steps of one clean checkpoint publish, restricted to `op`.
fn count_publish_steps(op: Option<FaultOp>) -> u64 {
    let dir = tempfile::tempdir().unwrap();
    faults::arm(FaultPlan {
        trigger_at: None,
        kind: FaultKind::Fail,
        op,
    });
    write_checkpoint(
        checkpoint_path(dir.path(), 0),
        &sample_progress(),
        &[1.0, -2.0, 3.5],
        &[0.9, 0.5],
    )
    .unwrap();
    let report = faults::disarm();
    assert!(!report.triggered);
    report.matching_steps
}

/// Fail (or tear) one step of a checkpoint publish with an intact prior
/// checkpoint present, and assert the recovery invariants.
fn run_publish_fault(step: u64, kind: FaultKind, op: Option<FaultOp>) {
    let params = [1.0, -2.0, 3.5];
    let history = [0.9, 0.5];
    let dir = tempfile::tempdir().unwrap();
    let prior = checkpoint_path(dir.path(), 0);
    write_checkpoint(&prior, &sample_progress(), &params, &history).unwrap();

    faults::arm(FaultPlan {
        trigger_at: Some(step),
        kind,
        op,
    });
    let next = checkpoint_path(dir.path(), 1);
    let result = write_checkpoint(&next, &sample_progress(), &params, &history);
    let report = faults::disarm();
    assert!(report.triggered, "{kind:?}: step {step} never ran");

    let err = result.expect_err(&format!(
        "{kind:?}: publish survived a fault at step {step}"
    ));
    assert!(
        err.to_string().contains("injected fault"),
        "{kind:?}: step {step}: expected a typed injected-fault error, got: {err}"
    );
    assert!(
        !faults::tmp_sibling(&next).exists(),
        "{kind:?}: step {step}: staging file left behind"
    );
    // The prior checkpoint is untouched and fully verifies.
    CheckpointFile::open_verified(&prior)
        .unwrap_or_else(|e| panic!("{kind:?}: step {step}: prior checkpoint damaged: {e}"));
    // The new path is absent, or intact if the fault landed after the
    // atomic publish.
    if next.exists() {
        CheckpointFile::open_verified(&next)
            .unwrap_or_else(|e| panic!("{kind:?}: step {step}: half-published checkpoint: {e}"));
    }
    // The resume scan still finds an intact checkpoint — typed, no panic.
    let scan = find_latest_intact(dir.path()).unwrap();
    assert!(
        scan.newest.is_some(),
        "{kind:?}: step {step}: nothing to resume from"
    );
}

#[test]
fn every_failed_publish_step_leaves_prior_checkpoints_intact() {
    let _guard = serial();
    let steps = count_publish_steps(None);
    assert!(steps >= 5, "expected several durable steps, saw {steps}");
    for step in 0..steps {
        run_publish_fault(step, FaultKind::Fail, None);
    }
    let writes = count_publish_steps(Some(FaultOp::Write));
    assert!(writes >= 2, "expected buffered write steps, saw {writes}");
    for step in 0..writes {
        run_publish_fault(step, FaultKind::ShortWrite, Some(FaultOp::Write));
    }
}

#[test]
fn fault_log_names_every_durable_step_of_a_publish() {
    let _guard = serial();
    let dir = tempfile::tempdir().unwrap();
    let path = checkpoint_path(dir.path(), 0);
    faults::arm(FaultPlan::count_only());
    write_checkpoint(&path, &sample_progress(), &[1.0, 2.0], &[]).unwrap();
    let report = faults::disarm();
    let ops: Vec<FaultOp> = report.log.iter().map(|s| s.op).collect();
    for needed in [
        FaultOp::Write,
        FaultOp::Flush,
        FaultOp::SyncFile,
        FaultOp::Rename,
        FaultOp::SyncDir,
    ] {
        assert!(
            ops.contains(&needed),
            "checkpoint publish never performed {needed:?}; log: {ops:?}"
        );
    }
    // Every step acted on the staging file or its directory — the final
    // path only ever appears as a rename target.
    let tmp = faults::tmp_sibling(&path);
    for step in &report.log {
        assert!(
            step.path == tmp || step.path == dir.path(),
            "step {:?} acted on unexpected path {}",
            step.op,
            step.path.display()
        );
    }
}

#[test]
fn training_surfaces_checkpoint_faults_as_typed_errors() {
    let _guard = serial();
    let (x, y) = dense_problem(200);
    let ctx = ExecContext::serial();
    let dir = tempfile::tempdir().unwrap();
    let cfg = CheckpointConfig::new(dir.path()).every_batches(2).retain(4);

    // Let the first publish succeed, then fail a durable step of the second.
    let steps = count_publish_steps(None);
    faults::arm(FaultPlan {
        trigger_at: Some(steps + 2),
        kind: FaultKind::Fail,
        op: None,
    });
    let result = Estimator::fit(
        &trainer_with(sgd_config(6).checkpoint(cfg.clone())),
        &x,
        &y,
        &ctx,
    );
    let report = faults::disarm();
    assert!(report.triggered);
    let err = result.expect_err("fit must fail when a checkpoint write fails");
    assert!(
        matches!(err, MlError::Optim(OptimError::Checkpoint(_))),
        "expected a typed checkpoint error, got: {err}"
    );
    assert_no_tmp_litter(dir.path());
    // The first publish survived intact; resuming from it finishes the run
    // to the exact bits of an uninterrupted one.
    assert_eq!(list_checkpoints(dir.path()).unwrap().len(), 1);
    let reference = Estimator::fit(&trainer_with(sgd_config(6)), &x, &y, &ctx).unwrap();
    let resumed = Estimator::fit(
        &trainer_with(sgd_config(6).checkpoint(cfg).resume(true)),
        &x,
        &y,
        &ctx,
    )
    .unwrap();
    assert_bits_eq(&reference.weights, &resumed.weights, "resume after fault");
    assert_eq!(reference.bias.to_bits(), resumed.bias.to_bits());
}

fn kill_cfg(dir: &Path) -> CheckpointConfig {
    CheckpointConfig::new(dir).every_batches(2).retain(3)
}

/// Child half of the kill matrix: trains with checkpointing while
/// `M3_CKPT_KILL_AFTER` aborts the process at the configured publish.  The
/// trailing `exit(3)` keeps the parent from mistaking a completed run for a
/// kill.  A no-op outside the child environment.
#[test]
fn kill_resume_child_worker() {
    let Some(dir) = std::env::var_os("M3_CKPT_CHILD_DIR") else {
        return;
    };
    let (x, y) = dense_problem(240);
    let ctx = ExecContext::serial();
    let trainer = trainer_with(sgd_config(6).checkpoint(kill_cfg(Path::new(&dir))));
    let _ = Estimator::fit(&trainer, &x, &y, &ctx);
    std::process::exit(3);
}

#[test]
fn killed_training_resumes_bit_identically() {
    if std::env::var_os("M3_CKPT_CHILD_DIR").is_some() {
        return; // only the worker test runs in the child
    }
    let (x, y) = dense_problem(240);
    let ctx = ExecContext::serial();
    let reference = Estimator::fit(&trainer_with(sgd_config(6)), &x, &y, &ctx).unwrap();

    // Pseudo-random kill points over the run's 24 publishes (batch cadence
    // of 2 over 6 epochs × 8 batches), reproducible across runs.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let kill_points: Vec<u64> = (0..4)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            1 + (state >> 33) % 20
        })
        .collect();

    let exe = std::env::current_exe().expect("test binary path");
    for kill_after in kill_points {
        let dir = tempfile::tempdir().unwrap();
        let output = std::process::Command::new(&exe)
            .args(["kill_resume_child_worker", "--exact", "--test-threads", "1"])
            .env("M3_CKPT_CHILD_DIR", dir.path())
            .env("M3_CKPT_KILL_AFTER", kill_after.to_string())
            .output()
            .expect("failed to re-exec the kill worker");
        assert!(
            !output.status.success(),
            "child survived kill_after={kill_after}"
        );

        // The abort leaves no staging litter, and the newest checkpoint is
        // intact (publishes complete before the kill fires).
        assert_no_tmp_litter(dir.path());
        let scan = find_latest_intact(dir.path()).unwrap();
        let newest = scan
            .newest
            .as_ref()
            .unwrap_or_else(|| panic!("no intact checkpoint after kill_after={kill_after}"));
        assert!(scan.skipped.is_empty());
        // The kill fired mid-run: the surviving snapshot predates the end.
        assert!(newest.progress().epoch < 6);

        let resumed = Estimator::fit(
            &trainer_with(sgd_config(6).checkpoint(kill_cfg(dir.path())).resume(true)),
            &x,
            &y,
            &ctx,
        )
        .unwrap();
        assert_bits_eq(
            &reference.weights,
            &resumed.weights,
            &format!("kill_after={kill_after}"),
        );
        assert_eq!(reference.bias.to_bits(), resumed.bias.to_bits());
    }
}

/// Run one fit with checkpointing, then a second fit resuming from the
/// newest surviving snapshot, and return both models.
fn checkpoint_then_resume(
    fit: impl Fn(&LogisticRegression) -> LogisticModel,
) -> (LogisticModel, LogisticModel) {
    let dir = tempfile::tempdir().unwrap();
    // 80 total batches and a cadence of 3: the newest surviving checkpoint
    // sits mid-epoch, so the resume genuinely replays a tail.
    let cfg = CheckpointConfig::new(dir.path()).every_batches(3).retain(2);
    let full = fit(&trainer_with(sgd_config(8).checkpoint(cfg.clone())));
    let resumed = fit(&trainer_with(sgd_config(8).checkpoint(cfg).resume(true)));
    (full, resumed)
}

#[test]
fn deterministic_resume_matrix_threads_backings_layouts() {
    let (x, y) = dense_problem(300);
    let (csr, ys) = sparse_problem(300);
    let dir = tempfile::tempdir().unwrap();
    let mapped = m3::core::alloc::persist_matrix(dir.path().join("sgd.m3"), &x).unwrap();
    let mapped_csr =
        m3::core::sparse::persist_csr(dir.path().join("sgd.m3csr"), &csr, None).unwrap();

    let plain = trainer_with(sgd_config(8));
    let dense_ref = Estimator::fit(&plain, &x, &y, &ctx_with(1)).unwrap();
    let sparse_ref = plain.fit_sparse(&csr, &ys, &ctx_with(1)).unwrap();

    for threads in [1usize, 2, 4] {
        let ctx = ctx_with(threads);
        let combos: [(&str, &LogisticModel, (LogisticModel, LogisticModel)); 4] = [
            (
                "dense mem",
                &dense_ref,
                checkpoint_then_resume(|t| Estimator::fit(t, &x, &y, &ctx).unwrap()),
            ),
            (
                "dense mmap",
                &dense_ref,
                checkpoint_then_resume(|t| Estimator::fit(t, &mapped, &y, &ctx).unwrap()),
            ),
            (
                "csr mem",
                &sparse_ref,
                checkpoint_then_resume(|t| t.fit_sparse(&csr, &ys, &ctx).unwrap()),
            ),
            (
                "csr mmap",
                &sparse_ref,
                checkpoint_then_resume(|t| t.fit_sparse(&mapped_csr, &ys, &ctx).unwrap()),
            ),
        ];
        for (label, reference, (full, resumed)) in combos {
            for (run, model) in [("checkpointed", &full), ("resumed", &resumed)] {
                assert_bits_eq(
                    &reference.weights,
                    &model.weights,
                    &format!("{label} {run} @ {threads} threads"),
                );
                assert_eq!(
                    reference.bias.to_bits(),
                    model.bias.to_bits(),
                    "{label} {run}"
                );
            }
        }
    }
    assert!(dense_ref.accuracy(&x, &y) > 0.9);
}

#[test]
fn corrupt_newest_checkpoints_fall_back_to_an_older_intact_one() {
    let (x, y) = dense_problem(200);
    let ctx = ExecContext::serial();
    let reference = Estimator::fit(&trainer_with(sgd_config(5)), &x, &y, &ctx).unwrap();

    let dir = tempfile::tempdir().unwrap();
    let cfg = CheckpointConfig::new(dir.path()).every_batches(4).retain(3);
    Estimator::fit(
        &trainer_with(sgd_config(5).checkpoint(cfg.clone())),
        &x,
        &y,
        &ctx,
    )
    .unwrap();

    // Corrupt the newest checkpoint's payload and truncate the second-newest.
    let files = list_checkpoints(dir.path()).unwrap();
    assert_eq!(files.len(), 3, "retention must keep exactly 3");
    let (_, newest) = files.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    bytes[4096 + 9] ^= 0x01;
    std::fs::write(newest, &bytes).unwrap();
    let (_, second) = &files[files.len() - 2];
    let bytes = std::fs::read(second).unwrap();
    std::fs::write(second, &bytes[..bytes.len() - 7]).unwrap();

    // The scan skips both with typed errors and lands on the oldest.
    let scan = find_latest_intact(dir.path()).unwrap();
    assert_eq!(scan.skipped.len(), 2);
    assert!(
        matches!(scan.skipped[0].1, CoreError::ChecksumMismatch { .. }),
        "corrupt payload must fail its checksum: {}",
        scan.skipped[0].1
    );
    assert!(
        matches!(scan.skipped[1].1, CoreError::SizeMismatch { .. }),
        "truncated file must fail the size check: {}",
        scan.skipped[1].1
    );
    assert_eq!(scan.newest.as_ref().unwrap().sequence(), files[0].0);

    // Resume replays from the older snapshot to the exact reference bits.
    let resumed = Estimator::fit(
        &trainer_with(sgd_config(5).checkpoint(cfg).resume(true)),
        &x,
        &y,
        &ctx,
    )
    .unwrap();
    assert_bits_eq(
        &reference.weights,
        &resumed.weights,
        "resume past corrupt checkpoints",
    );
    assert_eq!(reference.bias.to_bits(), resumed.bias.to_bits());
}

#[test]
fn divergence_never_checkpoints_a_non_finite_state() {
    let (x, y) = dense_problem(200);
    let ctx = ExecContext::serial();
    let dir = tempfile::tempdir().unwrap();
    let cfg = CheckpointConfig::new(dir.path())
        .every_batches(1)
        .retain(64);
    let trainer = trainer_with(sgd_config(5).learning_rate(1e12).checkpoint(cfg));
    let err = Estimator::fit(&trainer, &x, &y, &ctx).expect_err("lr = 1e12 must diverge");
    assert!(
        matches!(err, MlError::Optim(OptimError::Diverged { .. })),
        "expected a typed divergence error, got: {err}"
    );
    // Whatever was checkpointed before the divergence is finite and intact.
    for (_, path) in list_checkpoints(dir.path()).unwrap() {
        let f = CheckpointFile::open_verified(&path).unwrap();
        assert!(f.params().iter().all(|v| v.is_finite()));
        assert!(f.history().iter().all(|v| v.is_finite()));
    }
    assert_no_tmp_litter(dir.path());
}

#[test]
fn hogwild_checkpoints_at_epoch_boundaries_and_resumes() {
    let (x, y) = dense_problem(300);
    let ctx = ctx_with(4);
    let dir = tempfile::tempdir().unwrap();
    let cfg = CheckpointConfig::new(dir.path()).every_epochs(2).retain(2);
    let sgd = sgd_config(8).decay(0.05).mode(UpdateMode::Hogwild);
    let trained = Estimator::fit(
        &trainer_with(sgd.clone().checkpoint(cfg.clone())),
        &x,
        &y,
        &ctx,
    )
    .unwrap();
    assert!(trained.accuracy(&x, &y) > 0.85);

    // Epoch-boundary snapshots only, and exactly `retain` survivors.
    let files = list_checkpoints(dir.path()).unwrap();
    assert_eq!(files.len(), 2);
    for (_, path) in &files {
        let f = CheckpointFile::open_verified(path).unwrap();
        assert_eq!(f.progress().next_batch, 0, "Hogwild snapshots mid-epoch");
    }

    // The newest snapshot is the finished run: resuming reconstructs the
    // exact trained model without re-running a single batch.
    let resumed = Estimator::fit(
        &trainer_with(sgd.checkpoint(cfg).resume(true)),
        &x,
        &y,
        &ctx,
    )
    .unwrap();
    assert_bits_eq(
        &trained.weights,
        &resumed.weights,
        "hogwild reconstruction from the final snapshot",
    );
    assert_eq!(trained.bias.to_bits(), resumed.bias.to_bits());
}

#[test]
fn write_behind_checkpointing_matches_synchronous_results() {
    let (x, y) = dense_problem(200);
    let ctx = ExecContext::serial();
    let reference = Estimator::fit(&trainer_with(sgd_config(6)), &x, &y, &ctx).unwrap();

    let dir = tempfile::tempdir().unwrap();
    let cfg = CheckpointConfig::new(dir.path())
        .every_batches(2)
        .retain(2)
        .write_behind(true);
    let trained = Estimator::fit(
        &trainer_with(sgd_config(6).checkpoint(cfg.clone())),
        &x,
        &y,
        &ctx,
    )
    .unwrap();
    assert_bits_eq(
        &reference.weights,
        &trained.weights,
        "write-behind must not change the math",
    );

    // The queue drained at finish: an intact checkpoint is on disk and
    // resuming from it reaches the reference bits.
    assert!(find_latest_intact(dir.path()).unwrap().newest.is_some());
    let resumed = Estimator::fit(
        &trainer_with(sgd_config(6).checkpoint(cfg).resume(true)),
        &x,
        &y,
        &ctx,
    )
    .unwrap();
    assert_bits_eq(
        &reference.weights,
        &resumed.weights,
        "resume from a write-behind checkpoint",
    );
}

#[test]
fn deterministic_resume_matrix_passes_under_forced_scalar_kernels() {
    // The kernel path is cached per process: re-exec the deterministic
    // tests with M3_FORCE_SCALAR=1 (this test short-circuits in the child).
    if m3::linalg::dispatch::force_scalar_requested() {
        assert_eq!(
            m3::linalg::dispatch::active(),
            m3::linalg::KernelPath::Scalar,
            "M3_FORCE_SCALAR=1 must pin the scalar kernel path"
        );
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let output = std::process::Command::new(exe)
        .args(["deterministic", "--test-threads", "1"])
        .env("M3_FORCE_SCALAR", "1")
        .output()
        .expect("failed to re-exec the checkpoint battery");
    assert!(
        output.status.success(),
        "checkpoint battery failed under M3_FORCE_SCALAR=1:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}
