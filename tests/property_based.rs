//! Randomised property tests over the core invariants of the workspace:
//! storage round-trips, in-memory/mmap equivalence, optimiser and clustering
//! invariants, and the paging-simulator cache bounds.
//!
//! Originally written with `proptest`; this build environment is offline, so
//! the cases are now driven by seeded loops over the vendored `rand` — the
//! invariants checked are unchanged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use m3::prelude::*;

const CASES: u64 = 24;

/// Writing any matrix to a file and mapping it back yields identical bytes,
/// and every row view matches the source row.
#[test]
fn mmap_round_trip_preserves_every_row() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let rows = rng.gen_range(1usize..40);
        let cols = rng.gen_range(1usize..24);
        let seed: u32 = rng.gen_range(0u32..u32::MAX);
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((i as u64 + seed as u64) % 1000) as f64 * 0.25 - 100.0)
            .collect();
        let matrix = DenseMatrix::from_vec(data, rows, cols).unwrap();
        let dir = tempfile::tempdir().unwrap();
        let mapped = m3::core::alloc::persist_matrix(dir.path().join("p.m3"), &matrix).unwrap();
        assert_eq!(mapped.shape(), matrix.shape());
        assert_eq!(mapped.as_slice(), matrix.as_slice());
        for r in 0..rows {
            assert_eq!(RowStore::row(&mapped, r), matrix.row(r));
        }
    }
}

/// The dataset container preserves features and labels exactly.
#[test]
fn dataset_container_round_trip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + case);
        let rows = rng.gen_range(1usize..30);
        let cols = rng.gen_range(1usize..16);
        let label_scale = rng.gen_range(0usize..10);
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("c.m3ds");
        let mut builder = m3::core::builder::DatasetBuilder::create(&path, cols).unwrap();
        let mut expected_rows = Vec::new();
        let mut expected_labels = Vec::new();
        for r in 0..rows {
            let row: Vec<f64> = (0..cols).map(|c| (r * cols + c) as f64 * 0.5).collect();
            let label = (r % (label_scale + 1)) as f64;
            builder.push_row(&row, Some(label)).unwrap();
            expected_rows.push(row);
            expected_labels.push(label);
        }
        builder.finish().unwrap();
        let dataset = Dataset::open(&path).unwrap();
        assert_eq!(dataset.n_rows(), rows);
        assert_eq!(dataset.labels().unwrap(), &expected_labels[..]);
        for (r, expected) in expected_rows.iter().enumerate() {
            assert_eq!(RowStore::row(&dataset, r), &expected[..]);
        }
    }
}

/// A seeded random sparse matrix with adversarial structure: empty rows,
/// rows ending early, and (optionally) trailing all-zero columns that only
/// an explicit `n_features` can represent.
fn random_csr(rng: &mut StdRng, rows: usize, cols: usize) -> CsrMatrix {
    let mut builder = CsrBuilder::new(cols);
    let mut idx = Vec::new();
    let mut val = Vec::new();
    for _ in 0..rows {
        idx.clear();
        val.clear();
        if rng.gen_range(0u32..5) != 0 {
            for c in 0..cols {
                if rng.gen_range(0.0f64..1.0) < 0.35 {
                    idx.push(c as u32);
                    // Values that stress text round-tripping.
                    val.push(rng.gen_range(-4.0f64..4.0) / 3.0);
                }
            }
        }
        builder.push_row(&idx, &val).unwrap();
    }
    builder.finish()
}

/// Random sparse matrix → libsvm text → CSR → densify equals the original,
/// bit for bit, including empty rows and strictly-increasing duplicate-free
/// index ordering.
#[test]
fn libsvm_csr_round_trip_preserves_every_entry() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(7000 + case);
        let rows = rng.gen_range(1usize..30);
        let cols = rng.gen_range(1usize..20);
        let matrix = random_csr(&mut rng, rows, cols);
        let labels: Vec<f64> = (0..rows).map(|r| (r % 3) as f64).collect();

        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("rt.svm");
        m3::data::write_libsvm_csr(&path, &matrix, &labels).unwrap();
        let (back, back_labels) = m3::data::read_libsvm_csr(&path, Some(cols)).unwrap();
        assert_eq!(back, matrix, "case {case}");
        assert_eq!(back_labels, labels);
        assert_eq!(
            back.to_dense().as_slice(),
            matrix.to_dense().as_slice(),
            "densified twin must match bit for bit"
        );
        // Index ordering is strictly increasing (duplicate-free) per row.
        for r in 0..back.n_rows() {
            let (idx, _) = back.row(r);
            assert!(idx.windows(2).all(|p| p[0] < p[1]));
        }

        // The dense writer round-trips through the dense reader too.
        let dense = matrix.to_dense();
        m3::data::write_libsvm(&path, &dense, &labels).unwrap();
        let parsed = m3::data::read_libsvm(&path, Some(cols)).unwrap();
        assert_eq!(parsed.features.as_slice(), dense.as_slice());
    }
}

/// Trailing all-zero columns survive a round trip only through an explicit
/// `n_features`, and inference recovers exactly the largest used column.
#[test]
fn libsvm_round_trip_with_trailing_zero_columns() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(7500 + case);
        let rows = rng.gen_range(1usize..20);
        let used_cols = rng.gen_range(1usize..10);
        let padding = rng.gen_range(1usize..6);
        let mut matrix = random_csr(&mut rng, rows, used_cols);
        // Guarantee at least one entry in the last used column so inference
        // has a definite answer.
        if !matrix
            .indices()
            .iter()
            .any(|&c| c as usize == used_cols - 1)
        {
            let mut b = CsrBuilder::new(used_cols);
            b.push_row(&[(used_cols - 1) as u32], &[1.5]).unwrap();
            for r in 0..matrix.n_rows() {
                let (i, v) = matrix.row(r);
                b.push_row(i, v).unwrap();
            }
            matrix = b.finish();
        }
        let total_cols = used_cols + padding;
        let labels = vec![1.0; matrix.n_rows()];

        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("pad.svm");
        m3::data::write_libsvm_csr(&path, &matrix, &labels).unwrap();

        // Explicit n_features widens the matrix with all-zero columns.
        let (wide, _) = m3::data::read_libsvm_csr(&path, Some(total_cols)).unwrap();
        assert_eq!(wide.shape(), (matrix.n_rows(), total_cols));
        assert_eq!(wide.nnz(), matrix.nnz());
        assert_eq!(wide.indices(), matrix.indices());
        assert_eq!(wide.values(), matrix.values());
        // Inference recovers the largest used column.
        let (inferred, _) = m3::data::read_libsvm_csr(&path, None).unwrap();
        assert_eq!(inferred.n_cols(), used_cols);
    }
}

/// The streaming libsvm→binary-CSR converter produces exactly the arrays the
/// in-memory parser does, for any input.
#[test]
fn libsvm_binary_conversion_matches_in_memory_parse() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(8000 + case);
        let rows = rng.gen_range(1usize..25);
        let cols = rng.gen_range(1usize..16);
        let matrix = random_csr(&mut rng, rows, cols);
        let labels: Vec<f64> = (0..rows).map(|r| f64::from(r % 2 == 0)).collect();

        let dir = tempfile::tempdir().unwrap();
        let text = dir.path().join("conv.svm");
        let binary = dir.path().join("conv.m3csr");
        m3::data::write_libsvm_csr(&text, &matrix, &labels).unwrap();
        let file = m3::data::convert_libsvm_to_csr(&text, &binary, Some(cols)).unwrap();
        assert_eq!(file.shape(), matrix.shape());
        assert_eq!(file.indptr(), matrix.indptr());
        assert_eq!(file.indices(), matrix.indices());
        assert_eq!(file.values(), matrix.values());
        assert_eq!(file.labels().unwrap(), &labels[..]);
        assert_eq!(file.to_csr_matrix().unwrap(), matrix);
    }
}

/// The logistic loss gradient always matches central differences.
#[test]
fn logistic_gradient_matches_numerical_everywhere() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + case);
        let seed: u64 = rng.gen_range(0u64..1000);
        let l2 = rng.gen_range(0.0f64..0.5);
        let (x, y) = LinearProblem::random_classification(4, 0.1, seed).materialize(40);
        let ctx = ExecContext::serial();
        let loss = m3::ml::logistic::LogisticLoss::new(&x, &y, l2, &ctx);
        let w: Vec<f64> = (0..5)
            .map(|i| ((seed >> i) % 7) as f64 * 0.1 - 0.3)
            .collect();
        let err = m3::optim::function::gradient_check(&loss, &w, 1e-5);
        assert!(err < 1e-5, "gradient error {err}");
    }
}

/// k-means inertia never increases from one Lloyd iteration to the next.
#[test]
fn kmeans_inertia_is_monotone() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3000 + case);
        let seed: u64 = rng.gen_range(0u64..u64::MAX / 2);
        let k = rng.gen_range(2usize..5);
        let (x, _) = GaussianBlobs::new(k, 4, 15.0, 1.0, seed % 512).materialize(80);
        let trainer = KMeans::new(KMeansConfig {
            k,
            max_iterations: 12,
            tolerance: 0.0,
            seed: seed.wrapping_add(1),
            ..Default::default()
        });
        let model = UnsupervisedEstimator::fit(&trainer, &x, &ExecContext::new()).unwrap();
        let mut previous = f64::INFINITY;
        for &inertia in &model.inertia_history {
            assert!(inertia <= previous + 1e-9);
            previous = inertia;
        }
    }
}

/// L-BFGS never increases a convex quadratic objective between iterations
/// and ends close to its optimum.
#[test]
fn lbfgs_descends_convex_quadratics() {
    struct Quad {
        scale: Vec<f64>,
        center: Vec<f64>,
    }
    impl m3::optim::DifferentiableFunction for Quad {
        fn dimension(&self) -> usize {
            self.scale.len()
        }
        fn value(&self, w: &[f64]) -> f64 {
            w.iter()
                .zip(&self.scale)
                .zip(&self.center)
                .map(|((wi, a), c)| a * (wi - c).powi(2))
                .sum()
        }
        fn gradient(&self, w: &[f64], g: &mut [f64]) {
            for i in 0..w.len() {
                g[i] = 2.0 * self.scale[i] * (w[i] - self.center[i]);
            }
        }
    }
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4000 + case);
        let d = rng.gen_range(2usize..6);
        let scale: Vec<f64> = (0..d).map(|_| rng.gen_range(0.1f64..5.0)).collect();
        let center: Vec<f64> = (0..d).map(|_| rng.gen_range(-3.0f64..3.0)).collect();
        let f = Quad {
            scale,
            center: center.clone(),
        };
        let result = Lbfgs::new().run(&f, vec![0.0; d]);
        let mut previous = f64::INFINITY;
        for &v in &result.value_history {
            assert!(v <= previous + 1e-9);
            previous = v;
        }
        for (w, c) in result.weights.iter().zip(&center) {
            assert!((w - c).abs() < 1e-3, "weight {w} vs centre {c}");
        }
    }
}

/// The simulated page cache never reports more hits+misses than accesses and
/// never exceeds its capacity.
#[test]
fn page_cache_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5000 + case);
        let capacity = rng.gen_range(1usize..64);
        let n_accesses = rng.gen_range(1usize..200);
        let accesses: Vec<u64> = (0..n_accesses).map(|_| rng.gen_range(0u64..128)).collect();
        let mut cache = m3::vmsim::PageCache::new(capacity);
        for &page in &accesses {
            cache.access(page);
            assert!(cache.len() <= capacity);
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, accesses.len() as u64);
        assert!(stats.evictions <= stats.misses);
    }
}

/// Mini-batch epoch plans are pure functions of `(seed, epoch)`: rebuilding
/// the sampler reproduces every batch bit for bit.
#[test]
fn minibatch_plans_are_reproducible() {
    use m3::optim::Batch;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(9000 + case);
        let n = rng.gen_range(1usize..400);
        let batch_size = rng.gen_range(1usize..64);
        let seed: u64 = rng.gen_range(0u64..u64::MAX / 2);
        for scheme in [
            SamplingScheme::Sequential,
            SamplingScheme::ShuffledChunks,
            SamplingScheme::ShuffledEpochs,
            SamplingScheme::UniformRandom,
        ] {
            let a = MinibatchSampler::new(n, batch_size, scheme, seed).unwrap();
            let b = MinibatchSampler::new(n, batch_size, scheme, seed).unwrap();
            for epoch in [0usize, 1, 7] {
                let pa = a.epoch(epoch);
                let pb = b.epoch(epoch);
                assert_eq!(pa.n_batches(), pb.n_batches());
                for i in 0..pa.n_batches() {
                    match (pa.batch(i), pb.batch(i)) {
                        (Batch::Range(x), Batch::Range(y)) => assert_eq!(x, y),
                        (Batch::Indices(x), Batch::Indices(y)) => assert_eq!(x, y),
                        _ => panic!("batch kind changed between identical samplers"),
                    }
                }
            }
        }
    }
}

/// Without-replacement schemes visit every row exactly once per epoch, and
/// batch boundaries never split or duplicate a row.
#[test]
fn minibatch_epochs_visit_every_row_exactly_once() {
    use m3::optim::Batch;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(9100 + case);
        let n = rng.gen_range(1usize..300);
        let batch_size = rng.gen_range(1usize..48);
        let seed: u64 = rng.gen_range(0u64..1 << 40);
        let effective = batch_size.min(n);
        for scheme in [
            SamplingScheme::Sequential,
            SamplingScheme::ShuffledChunks,
            SamplingScheme::ShuffledEpochs,
        ] {
            let sampler = MinibatchSampler::new(n, batch_size, scheme, seed).unwrap();
            assert_eq!(sampler.n_batches(), n.div_ceil(effective));
            for epoch in 0..3 {
                let plan = sampler.epoch(epoch);
                let mut visits = vec![0usize; n];
                for b in 0..plan.n_batches() {
                    let batch = plan.batch(b);
                    assert!(!batch.is_empty(), "{scheme:?} produced an empty batch");
                    assert!(batch.len() <= effective, "{scheme:?} oversized a batch");
                    match batch {
                        Batch::Range(r) => {
                            for i in r {
                                visits[i] += 1;
                            }
                        }
                        Batch::Indices(ix) => {
                            for &i in ix {
                                visits[i] += 1;
                            }
                        }
                    }
                }
                assert!(
                    visits.iter().all(|&v| v == 1),
                    "{scheme:?} epoch {epoch}: a row was skipped or duplicated"
                );
            }
        }
    }
}

/// The with-replacement scheme always draws full batches of in-range rows.
#[test]
fn minibatch_uniform_random_draws_full_in_range_batches() {
    use m3::optim::Batch;
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(9200 + case);
        let n = rng.gen_range(1usize..200);
        let batch_size = rng.gen_range(1usize..32);
        let effective = batch_size.min(n);
        let sampler =
            MinibatchSampler::new(n, batch_size, SamplingScheme::UniformRandom, 9200 + case)
                .unwrap();
        let plan = sampler.epoch(case as usize % 5);
        assert_eq!(plan.n_batches(), n.div_ceil(effective));
        for b in 0..plan.n_batches() {
            match plan.batch(b) {
                Batch::Indices(ix) => {
                    assert_eq!(ix.len(), effective, "with-replacement batches are full");
                    assert!(ix.iter().all(|&i| i < n));
                }
                Batch::Range(_) => panic!("UniformRandom must gather indices"),
            }
        }
    }
}

/// Degenerate sampler configurations fail with typed errors instead of
/// panicking or silently producing empty plans.
#[test]
fn minibatch_degenerate_configurations_are_rejected() {
    use m3::optim::SamplerError;
    for scheme in [
        SamplingScheme::Sequential,
        SamplingScheme::ShuffledChunks,
        SamplingScheme::ShuffledEpochs,
        SamplingScheme::UniformRandom,
    ] {
        assert!(matches!(
            MinibatchSampler::new(10, 0, scheme, 1),
            Err(SamplerError::ZeroBatchSize)
        ));
        assert!(matches!(
            MinibatchSampler::new(0, 8, scheme, 1),
            Err(SamplerError::EmptyDataset)
        ));
    }
    // The errors are real `std::error::Error`s with useful messages.
    let e = MinibatchSampler::new(10, 0, SamplingScheme::Sequential, 1).unwrap_err();
    assert!(e.to_string().contains("batch size"));
    let e = MinibatchSampler::new(0, 8, SamplingScheme::Sequential, 1).unwrap_err();
    assert!(e.to_string().contains("0 examples"));
}

/// Row-range splitting covers every row exactly once for any inputs.
#[test]
fn split_rows_partitions_exactly() {
    for case in 0..CASES * 4 {
        let mut rng = StdRng::seed_from_u64(6000 + case);
        let n_rows = rng.gen_range(0usize..500);
        let n_chunks = rng.gen_range(0usize..17);
        let ranges = m3::linalg::parallel::split_rows(n_rows, n_chunks);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, n_rows);
        let mut previous_end = 0;
        for r in &ranges {
            assert_eq!(r.start, previous_end);
            previous_end = r.end;
        }
    }
}

/// A valid `TrainProgress` drawn from `rng`, sized for `n_params` params.
fn random_progress(rng: &mut StdRng) -> m3::core::TrainProgress {
    let epochs = rng.gen_range(1u64..20);
    let batch_size = rng.gen_range(1u64..64);
    let n_examples = rng.gen_range(1u64..500);
    m3::core::TrainProgress {
        epoch: rng.gen_range(0..=epochs),
        next_batch: rng.gen_range(0..=n_examples.div_ceil(batch_size)),
        n_examples,
        seed: rng.gen(),
        batch_size,
        epochs,
        eval_every: rng.gen_range(0u64..5),
        sampling: rng.gen_range(0u32..4),
        mode: rng.gen_range(0u32..2),
        learning_rate: rng.gen_range(1e-4f64..10.0),
        decay: rng.gen_range(0.0f64..1.0),
        evaluations: rng.gen_range(0u64..10_000),
        sequence: rng.gen_range(0u64..1_000),
    }
}

/// Checkpoint containers round-trip bit-exactly and refuse corruption,
/// truncation, wrong-kind and wrong-version files with typed errors.
#[test]
fn checkpoint_refuses_corruption_truncation_and_wrong_kind() {
    use m3::core::ckpt::{checkpoint_path, write_checkpoint, CheckpointFile};
    use m3::core::CoreError;

    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(9000 + case);
        let n_params = rng.gen_range(1usize..200);
        let n_history = rng.gen_range(0usize..30);
        let params: Vec<f64> = (0..n_params).map(|_| rng.gen_range(-5.0f64..5.0)).collect();
        let history: Vec<f64> = (0..n_history).map(|_| rng.gen_range(0.0f64..3.0)).collect();
        let progress = random_progress(&mut rng);

        let dir = tempfile::tempdir().unwrap();
        let path = checkpoint_path(dir.path(), progress.sequence);
        write_checkpoint(&path, &progress, &params, &history).unwrap();

        // Bit-exact round trip.
        let file = CheckpointFile::open_verified(&path).unwrap();
        assert_eq!(file.progress(), &progress, "case {case}");
        for (a, b) in file.params().iter().zip(&params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in file.history().iter().zip(&history) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let pristine = std::fs::read(&path).unwrap();

        // Flip one random payload byte: open_verified must report a
        // checksum mismatch in a payload section, never a panic.
        let mut corrupt = pristine.clone();
        let payload_len = corrupt.len() - 4096;
        let victim = 4096 + rng.gen_range(0usize..payload_len);
        corrupt[victim] ^= 1 << rng.gen_range(0u32..8);
        std::fs::write(&path, &corrupt).unwrap();
        let err = CheckpointFile::open_verified(&path).unwrap_err();
        assert!(
            matches!(err, CoreError::ChecksumMismatch { ref section, .. }
                if section == "params" || section == "history"),
            "case {case}: expected a payload checksum mismatch, got: {err}"
        );

        // Truncate at a random point: SizeMismatch (or BadHeader when the
        // cut lands inside the header page).
        let cut = rng.gen_range(0usize..pristine.len());
        std::fs::write(&path, &pristine[..cut]).unwrap();
        let err = CheckpointFile::open(&path).unwrap_err();
        assert!(
            matches!(
                err,
                CoreError::SizeMismatch { .. } | CoreError::BadHeader { .. }
            ),
            "case {case}: truncation at {cut} gave: {err}"
        );

        // Wrong kind: a model artifact at a checkpoint path is refused on
        // magic alone.
        let model = m3::ml::LinearModel {
            weights: params.clone().into(),
            bias: 0.5,
        };
        model.save(&path).unwrap();
        assert!(matches!(
            CheckpointFile::open(&path),
            Err(CoreError::BadHeader { .. })
        ));

        // Wrong version: bump the version field of a pristine image.
        let mut wrong_version = pristine.clone();
        wrong_version[8] = wrong_version[8].wrapping_add(1);
        std::fs::write(&path, &wrong_version).unwrap();
        let err = CheckpointFile::open(&path).unwrap_err();
        assert!(
            matches!(err, CoreError::BadHeader { ref reason } if reason.contains("version")),
            "case {case}: expected a version error, got: {err}"
        );
    }
}

/// The retention policy keeps exactly `retain` checkpoints — always the
/// newest ones, oldest pruned first — for any save count and retain limit.
#[test]
fn checkpoint_retention_keeps_exactly_the_newest_k() {
    use m3::core::ckpt::list_checkpoints;
    use m3::optim::Checkpointer;

    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(11_000 + case);
        let retain = rng.gen_range(1usize..6);
        let saves = rng.gen_range(1usize..12);
        let params: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0f64..1.0)).collect();
        let mut progress = random_progress(&mut rng);

        let dir = tempfile::tempdir().unwrap();
        let cfg = CheckpointConfig::new(dir.path()).retain(retain);
        let mut ckpt = Checkpointer::new(&cfg).unwrap();
        for s in 0..saves {
            progress.evaluations = s as u64;
            ckpt.save(progress, &params, &[]).unwrap();
        }
        ckpt.finish().unwrap();

        let survivors = list_checkpoints(dir.path()).unwrap();
        assert_eq!(
            survivors.len(),
            saves.min(retain),
            "case {case}: retain {retain}, saves {saves}"
        );
        let sequences: Vec<u64> = survivors.iter().map(|&(seq, _)| seq).collect();
        let newest: Vec<u64> = (saves.saturating_sub(retain)..saves)
            .map(|s| s as u64)
            .collect();
        assert_eq!(
            sequences, newest,
            "case {case}: oldest must be pruned first"
        );
    }
}

/// R-MAT generation is a pure function of its config — regenerating with the
/// same seed reproduces the file byte for byte — and every published
/// adjacency list is sorted, duplicate-free, loop-free and in range, with
/// the summary's edge count matching the container header exactly.
#[test]
fn rmat_generation_is_deterministic_and_well_formed() {
    use m3::core::AdjacencyStore;
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(9000 + case);
        let scale = rng.gen_range(4u32..10);
        let n_edges = rng.gen_range(50u64..2500);
        let cfg = m3::data::RmatConfig::new(scale, n_edges)
            .with_seed(rng.gen())
            .with_symmetric(rng.gen_bool(0.5))
            .with_mem_budget(64 << 10);
        let dir = tempfile::tempdir().unwrap();
        let first = dir.path().join("first.m3g");
        let second = dir.path().join("second.m3g");
        let summary = m3::data::generate_rmat(&first, &cfg).unwrap();
        m3::data::generate_rmat(&second, &cfg).unwrap();
        assert_eq!(
            std::fs::read(&first).unwrap(),
            std::fs::read(&second).unwrap(),
            "case {case}: same config must publish identical bytes"
        );

        let graph = m3::core::GraphFile::open_verified(&first).unwrap();
        assert_eq!(graph.n_nodes() as u64, 1u64 << scale, "case {case}");
        assert_eq!(graph.n_edges() as u64, summary.written_edges, "case {case}");
        assert_eq!(summary.requested_edges, n_edges, "case {case}");
        let mut walked = 0usize;
        for v in 0..graph.n_nodes() {
            let row = graph.neighbors(v);
            assert!(
                row.windows(2).all(|w| w[0] < w[1]),
                "case {case}: node {v} adjacency must be strictly increasing"
            );
            assert!(
                row.iter().all(|&t| (t as usize) < graph.n_nodes()),
                "case {case}: node {v} has an out-of-range neighbor"
            );
            assert!(!row.contains(&(v as u32)), "case {case}: self-loop at {v}");
            walked += row.len();
        }
        assert_eq!(
            walked,
            graph.n_edges(),
            "case {case}: indptr spans all edges"
        );
    }
}

/// Degenerate R-MAT configurations are rejected up front with a typed
/// configuration error and leave nothing on disk.
#[test]
fn rmat_degenerate_configs_are_rejected() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("never.m3g");
    let good = m3::data::RmatConfig::new(6, 100);
    let bad = [
        m3::data::RmatConfig {
            scale: 0,
            ..good.clone()
        },
        m3::data::RmatConfig {
            scale: 32,
            ..good.clone()
        },
        m3::data::RmatConfig {
            n_edges: 0,
            ..good.clone()
        },
        m3::data::RmatConfig {
            a: -0.2,
            b: 0.6,
            c: 0.3,
            d: 0.3,
            ..good.clone()
        },
        m3::data::RmatConfig {
            a: 0.5,
            b: 0.5,
            c: 0.5,
            d: 0.5,
            ..good.clone()
        },
        m3::data::RmatConfig {
            b: f64::INFINITY,
            ..good.clone()
        },
        good.with_mem_budget(100),
    ];
    for (i, cfg) in bad.into_iter().enumerate() {
        let err = m3::data::generate_rmat(&path, &cfg).unwrap_err();
        assert!(
            matches!(err, m3::data::DataError::InvalidConfig(_)),
            "config {i}: expected InvalidConfig, got {err}"
        );
        assert!(!path.exists(), "config {i}: rejection must not touch disk");
    }
}
