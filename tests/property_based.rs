//! Property-based tests (proptest) over the core invariants of the workspace:
//! storage round-trips, in-memory/mmap equivalence, optimiser and clustering
//! invariants, and the paging-simulator cache bounds.

use proptest::prelude::*;

use m3::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Writing any matrix to a file and mapping it back yields identical bytes,
    /// and every row view matches the source row.
    #[test]
    fn mmap_round_trip_preserves_every_row(
        rows in 1usize..40,
        cols in 1usize..24,
        seed in any::<u32>(),
    ) {
        let data: Vec<f64> = (0..rows * cols)
            .map(|i| ((i as u64 + seed as u64) % 1000) as f64 * 0.25 - 100.0)
            .collect();
        let matrix = DenseMatrix::from_vec(data, rows, cols).unwrap();
        let dir = tempfile::tempdir().unwrap();
        let mapped = m3::core::alloc::persist_matrix(dir.path().join("p.m3"), &matrix).unwrap();
        prop_assert_eq!(mapped.shape(), matrix.shape());
        prop_assert_eq!(mapped.as_slice(), matrix.as_slice());
        for r in 0..rows {
            prop_assert_eq!(RowStore::row(&mapped, r), matrix.row(r));
        }
    }

    /// The dataset container preserves features and labels exactly.
    #[test]
    fn dataset_container_round_trip(
        rows in 1usize..30,
        cols in 1usize..16,
        label_scale in 0u8..10,
    ) {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("c.m3ds");
        let mut builder = m3::core::builder::DatasetBuilder::create(&path, cols).unwrap();
        let mut expected_rows = Vec::new();
        let mut expected_labels = Vec::new();
        for r in 0..rows {
            let row: Vec<f64> = (0..cols).map(|c| (r * cols + c) as f64 * 0.5).collect();
            let label = (r % (label_scale as usize + 1)) as f64;
            builder.push_row(&row, Some(label)).unwrap();
            expected_rows.push(row);
            expected_labels.push(label);
        }
        builder.finish().unwrap();
        let dataset = Dataset::open(&path).unwrap();
        prop_assert_eq!(dataset.n_rows(), rows);
        prop_assert_eq!(dataset.labels().unwrap(), &expected_labels[..]);
        for r in 0..rows {
            prop_assert_eq!(RowStore::row(&dataset, r), &expected_rows[r][..]);
        }
    }

    /// The logistic loss gradient always matches central differences.
    #[test]
    fn logistic_gradient_matches_numerical_everywhere(
        seed in any::<u64>(),
        l2 in 0.0f64..0.5,
    ) {
        let (x, y) = LinearProblem::random_classification(4, 0.1, seed % 1000).materialize(40);
        let loss = m3::ml::logistic::LogisticLoss::new(&x, &y, l2, 1);
        let w: Vec<f64> = (0..5).map(|i| ((seed >> i) % 7) as f64 * 0.1 - 0.3).collect();
        let err = m3::optim::function::gradient_check(&loss, &w, 1e-5);
        prop_assert!(err < 1e-5, "gradient error {}", err);
    }

    /// k-means inertia never increases from one Lloyd iteration to the next.
    #[test]
    fn kmeans_inertia_is_monotone(seed in any::<u64>(), k in 2usize..5) {
        let (x, _) = GaussianBlobs::new(k, 4, 15.0, 1.0, seed % 512).materialize(80);
        let model = KMeans::new(KMeansConfig {
            k,
            max_iterations: 12,
            tolerance: 0.0,
            seed: seed.wrapping_add(1),
            n_threads: 1,
            ..Default::default()
        })
        .fit(&x)
        .unwrap();
        let mut previous = f64::INFINITY;
        for &inertia in &model.inertia_history {
            prop_assert!(inertia <= previous + 1e-9);
            previous = inertia;
        }
    }

    /// L-BFGS never increases a convex quadratic objective between iterations
    /// and ends close to its optimum.
    #[test]
    fn lbfgs_descends_convex_quadratics(
        scale in prop::collection::vec(0.1f64..5.0, 2..6),
        shift in prop::collection::vec(-3.0f64..3.0, 2..6),
    ) {
        let d = scale.len().min(shift.len());
        let scale = scale[..d].to_vec();
        let center = shift[..d].to_vec();
        struct Quad { scale: Vec<f64>, center: Vec<f64> }
        impl m3::optim::DifferentiableFunction for Quad {
            fn dimension(&self) -> usize { self.scale.len() }
            fn value(&self, w: &[f64]) -> f64 {
                w.iter().zip(&self.scale).zip(&self.center)
                    .map(|((wi, a), c)| a * (wi - c).powi(2)).sum()
            }
            fn gradient(&self, w: &[f64], g: &mut [f64]) {
                for i in 0..w.len() { g[i] = 2.0 * self.scale[i] * (w[i] - self.center[i]); }
            }
        }
        let f = Quad { scale, center: center.clone() };
        let result = Lbfgs::new().run(&f, vec![0.0; d]);
        let mut previous = f64::INFINITY;
        for &v in &result.value_history {
            prop_assert!(v <= previous + 1e-9);
            previous = v;
        }
        for (w, c) in result.weights.iter().zip(&center) {
            prop_assert!((w - c).abs() < 1e-3, "weight {} vs centre {}", w, c);
        }
    }

    /// The simulated page cache never reports more hits+misses than accesses
    /// and never exceeds its capacity.
    #[test]
    fn page_cache_invariants(capacity in 1usize..64, accesses in prop::collection::vec(0u64..128, 1..200)) {
        let mut cache = m3::vmsim::PageCache::new(capacity);
        for &page in &accesses {
            cache.access(page);
            prop_assert!(cache.len() <= capacity);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, accesses.len() as u64);
        prop_assert!(stats.evictions <= stats.misses);
    }

    /// Row-range splitting covers every row exactly once for any inputs.
    #[test]
    fn split_rows_partitions_exactly(n_rows in 0usize..500, n_chunks in 0usize..17) {
        let ranges = m3::linalg::parallel::split_rows(n_rows, n_chunks);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        prop_assert_eq!(total, n_rows);
        let mut previous_end = 0;
        for r in &ranges {
            prop_assert_eq!(r.start, previous_end);
            previous_end = r.end;
        }
    }
}
