//! Cross-crate integration tests: dataset generation → on-disk container →
//! memory-mapped training → evaluation, exercising the full M3 pipeline the
//! way a downstream user would — through the `Estimator`/`ExecContext` API.

use m3::data::split::{gather_rows, train_test_split};
use m3::ml::naive_bayes::GaussianNbTrainer;
use m3::prelude::*;

/// Build a labelled Infimnist-like container on disk and return its path.
fn build_dataset(dir: &tempfile::TempDir, rows: u64, seed: u64) -> std::path::PathBuf {
    let path = dir.path().join(format!("infimnist_{rows}_{seed}.m3ds"));
    let generator = InfimnistLike::new(seed);
    m3::data::writer::write_dataset(&generator, &path, rows).expect("dataset written");
    path
}

#[test]
fn softmax_trained_on_mmap_dataset_generalises_to_held_out_rows() {
    let dir = tempfile::tempdir().unwrap();
    let path = build_dataset(&dir, 900, 11);
    let dataset = Dataset::open(&path).unwrap();
    let labels: Vec<f64> = dataset.labels().unwrap().to_vec();

    let split = train_test_split(dataset.n_rows(), 0.25, 3).unwrap();
    let (train_x, train_y) = gather_rows(&dataset, &split.train, Some(&labels));
    let (test_x, test_y) = gather_rows(&dataset, &split.test, Some(&labels));

    let trainer = SoftmaxRegression::new(SoftmaxConfig {
        n_classes: 10,
        max_iterations: 40,
        ..Default::default()
    });
    let ctx = ExecContext::new().with_threads(2);
    let model = Estimator::fit(&trainer, &train_x, train_y.as_ref().unwrap(), &ctx).unwrap();

    let train_acc = model.accuracy(&train_x, train_y.as_ref().unwrap());
    let test_acc = model.accuracy(&test_x, test_y.as_ref().unwrap());
    assert!(train_acc > 0.7, "train accuracy {train_acc}");
    assert!(
        test_acc > 0.5,
        "test accuracy {test_acc} should beat chance (0.1) clearly"
    );
}

#[test]
fn logistic_regression_identical_over_ram_mmap_and_dataset_container() {
    let dir = tempfile::tempdir().unwrap();
    let problem = LinearProblem::random_classification(12, 0.05, 21);
    let (in_memory, labels) = problem.materialize(400);

    // Raw mmap file.
    let raw = dir.path().join("raw.m3");
    let raw_labels = m3::data::writer::write_raw_matrix(&problem, &raw, 400).unwrap();
    assert_eq!(raw_labels, labels);
    let mapped = mmap_alloc(&raw, 400, 12).unwrap();

    // Container file.
    let container = dir.path().join("container.m3ds");
    m3::data::writer::write_dataset(&problem, &container, 400).unwrap();
    let dataset = Dataset::open(&container).unwrap();

    let trainer = LogisticRegression::new(LogisticConfig {
        max_iterations: 60,
        ..Default::default()
    });
    let ctx = ExecContext::new().with_threads(2);
    let a = Estimator::fit(&trainer, &in_memory, &labels, &ctx).unwrap();
    let b = Estimator::fit(&trainer, &mapped, &labels, &ctx).unwrap();
    let c = Estimator::fit(&trainer, &dataset, dataset.labels().unwrap(), &ctx).unwrap();

    // The shared ExecContext fixes the chunking and reduction order, so the
    // three storage backends produce bit-identical models (the parity suite
    // checks this exhaustively; this is the end-to-end smoke version).
    for (x, y) in a.weights.iter().zip(&b.weights) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    for (x, y) in a.weights.iter().zip(&c.weights) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.bias.to_bits(), b.bias.to_bits());
    assert_eq!(a.bias.to_bits(), c.bias.to_bits());
    assert!(a.accuracy(&in_memory, &labels) > 0.9);
}

#[test]
fn kmeans_paper_protocol_runs_over_container_and_separates_blobs() {
    let dir = tempfile::tempdir().unwrap();
    let generator = GaussianBlobs::new(5, 16, 40.0, 1.5, 4);
    let path = dir.path().join("blobs.m3ds");
    m3::data::writer::write_dataset(&generator, &path, 600).unwrap();
    let dataset = Dataset::open(&path).unwrap();

    let trainer = KMeans::new(KMeansConfig::paper());
    let model = UnsupervisedEstimator::fit(&trainer, &dataset, &ExecContext::new()).unwrap();
    assert_eq!(model.iterations, 10);
    assert_eq!(model.k(), 5);

    // Assignments should correlate strongly with the generating cluster ids.
    let truth: Vec<f64> = dataset.labels().unwrap().to_vec();
    let assignments = model.predict(&dataset);
    // Build the best mapping from predicted cluster to true cluster by
    // majority vote and measure agreement.
    let mut votes = vec![vec![0usize; 5]; 5];
    for (a, t) in assignments.iter().zip(&truth) {
        votes[*a][*t as usize] += 1;
    }
    let agreement: usize = votes.iter().map(|row| row.iter().max().unwrap()).sum();
    let fraction = agreement as f64 / truth.len() as f64;
    assert!(fraction > 0.95, "cluster/label agreement only {fraction}");
}

#[test]
fn standardizer_and_naive_bayes_work_over_mapped_features() {
    let dir = tempfile::tempdir().unwrap();
    let generator = GaussianBlobs::new(3, 8, 20.0, 2.0, 6);
    let path = dir.path().join("nb.m3ds");
    m3::data::writer::write_dataset(&generator, &path, 300).unwrap();
    let dataset = Dataset::open(&path).unwrap();
    let labels: Vec<f64> = dataset.labels().unwrap().to_vec();

    let ctx = ExecContext::new().with_threads(2);
    let standardizer = UnsupervisedEstimator::fit(&StandardScaler, &dataset, &ctx).unwrap();
    assert_eq!(standardizer.n_features(), 8);
    let transformed = standardizer.transform_to_matrix(&dataset);
    let stats = m3::linalg::stats::ColumnStats::compute(&transformed.view());
    for c in 0..8 {
        assert!(stats.mean[c].abs() < 1e-9);
    }

    let model = Estimator::fit(&GaussianNbTrainer::new(3), &dataset, &labels, &ctx).unwrap();
    assert!(model.accuracy(&dataset, &labels) > 0.95);
}

#[test]
fn touch_stats_report_every_training_sweep() {
    use std::sync::Arc;
    let dir = tempfile::tempdir().unwrap();
    let problem = LinearProblem::random_classification(8, 0.05, 2);
    let raw = dir.path().join("touch.m3");
    let labels = m3::data::writer::write_raw_matrix(&problem, &raw, 200).unwrap();

    let stats = m3::core::stats::TouchStats::new_shared();
    let mapped = mmap_alloc(&raw, 200, 8)
        .unwrap()
        .with_stats(Arc::clone(&stats));
    let trainer = LogisticRegression::new(LogisticConfig {
        max_iterations: 5,
        fixed_iterations: true,
        ..Default::default()
    });
    let model = Estimator::fit(&trainer, &mapped, &labels, &ExecContext::serial()).unwrap();

    // Every objective/gradient evaluation sweeps all 200 rows exactly once.
    let expected_rows = model.optimization.function_evaluations as u64 * 200;
    assert_eq!(stats.rows_read(), expected_rows);
    assert_eq!(stats.bytes_read(), expected_rows * 8 * 8);
}

#[test]
fn access_tracer_hooks_record_training_sweeps_for_the_simulator() {
    // The ExecContext tracer hook closes the loop the paper's ongoing-work
    // section describes: record the page-level access pattern of a real
    // training run, then replay it against the simulated page cache.
    use std::sync::Arc;
    let dir = tempfile::tempdir().unwrap();
    let problem = LinearProblem::random_classification(8, 0.05, 13);
    let raw = dir.path().join("trace.m3");
    let labels = m3::data::writer::write_raw_matrix(&problem, &raw, 300).unwrap();
    let mapped = mmap_alloc(&raw, 300, 8).unwrap();

    let tracer = Arc::new(m3::core::trace::AccessTracer::for_matrix(300, 8));
    let ctx = ExecContext::serial().with_tracer(Arc::clone(&tracer));
    let trainer = LogisticRegression::new(LogisticConfig {
        max_iterations: 3,
        fixed_iterations: true,
        ..Default::default()
    });
    let model = Estimator::fit(&trainer, &mapped, &labels, &ctx).unwrap();

    let trace = tracer.snapshot();
    assert!(!trace.is_empty());
    // Every full-data sweep records the same chunk sequence, so the total is
    // an exact multiple of the sweep count, and each sweep covers at least
    // every page of the region (chunk boundaries that land mid-page count
    // the shared page for both neighbouring chunks).
    let region_pages = trace.region_pages();
    let sweeps = model.optimization.function_evaluations as u64;
    assert_eq!(trace.total_page_touches() % sweeps, 0);
    let touches_per_sweep = trace.total_page_touches() / sweeps;
    assert!(
        touches_per_sweep >= region_pages,
        "each sweep must touch every page: {touches_per_sweep} < {region_pages}"
    );

    // Replay the recorded trace against the simulated page cache.
    let report = Simulator::new(SimConfig::paper_machine()).replay(&trace);
    assert_eq!(
        report.bytes_touched,
        trace.total_page_touches() * m3::core::PAGE_SIZE as u64
    );
}
