//! Stress tests for the lock-free Hogwild update path.
//!
//! `SharedParams` publishes every f64 coordinate through an `AtomicU64`
//! compare-exchange loop, so concurrent updates must never expose a torn
//! write: any value read back is one that some completed `fetch_add`
//! actually released.  The hammer below checks exactly that — writers add
//! `+1.0` only, so every legal intermediate value is a non-negative integer
//! no larger than the per-cell total; anything else (a NaN, a fraction, an
//! out-of-range bit pattern) would be evidence of tearing.

use m3::optim::{DifferentiableFunction, SharedParams};
use m3::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};

const CELLS: usize = 64;
const WRITERS: usize = 8;
const ADDS_PER_WRITER: usize = 20_000;

#[test]
fn concurrent_fetch_adds_never_tear_and_sum_exactly() {
    let shared = SharedParams::new(&vec![0.0; CELLS]);
    let done = AtomicBool::new(false);
    let max_per_cell = (WRITERS * ADDS_PER_WRITER) as f64;

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let shared = &shared;
            scope.spawn(move || {
                // Each writer walks the cells from its own offset so writes
                // collide constantly.
                for i in 0..ADDS_PER_WRITER {
                    shared.fetch_add((w * 7 + i) % CELLS, 1.0);
                }
            });
        }
        // Two readers hammer loads while the writers run: every observed
        // value must be an exact integer within the legal range.
        for _ in 0..2 {
            let shared = &shared;
            let done = &done;
            scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    for i in 0..CELLS {
                        let v = shared.load(i);
                        assert!(
                            v.fract() == 0.0 && (0.0..=max_per_cell).contains(&v),
                            "torn read: cell {i} = {v}"
                        );
                    }
                }
            });
        }
        // Writer threads joined when their handles drop at scope exit; flag
        // the readers once the writers are done.  Join writers explicitly by
        // re-spawning is unnecessary: instead watch the total.
        let shared = &shared;
        let done = &done;
        scope.spawn(move || {
            let target = (WRITERS * ADDS_PER_WRITER) as f64;
            loop {
                let total: f64 = (0..CELLS).map(|i| shared.load(i)).sum();
                if total >= target {
                    done.store(true, Ordering::Relaxed);
                    return;
                }
                std::thread::yield_now();
            }
        });
    });

    // Every update landed exactly once.
    let total: f64 = (0..CELLS).map(|i| shared.load(i)).sum();
    assert_eq!(total, (WRITERS * ADDS_PER_WRITER) as f64);
    // And the per-cell counts match the deterministic write pattern.
    let mut expected = vec![0.0f64; CELLS];
    for w in 0..WRITERS {
        for i in 0..ADDS_PER_WRITER {
            expected[(w * 7 + i) % CELLS] += 1.0;
        }
    }
    for (i, want) in expected.iter().enumerate() {
        assert_eq!(shared.load(i), *want, "cell {i}");
    }
}

#[test]
fn hogwild_snapshot_round_trips_exact_bit_patterns() {
    // Negative zero, subnormals, extreme exponents: the atomic cell must
    // store and return the exact bit pattern.
    let weird = [
        0.0,
        -0.0,
        f64::MIN_POSITIVE / 2.0,
        -f64::MAX,
        f64::MAX,
        1e-300,
        std::f64::consts::PI,
    ];
    let shared = SharedParams::new(&weird);
    let mut back = vec![0.0; weird.len()];
    shared.snapshot_into(&mut back);
    for (a, b) in weird.iter().zip(&back) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(shared.to_vec().len(), weird.len());
}

#[test]
fn hogwild_loss_trends_down_across_epochs() {
    let generator = LinearProblem::classification(vec![1.0, -1.5, 0.75, 0.5], 0.3, 0.2, 41);
    let (x, y) = generator.materialize(600);
    let ctx = ExecContext::new().with_threads(4);
    let loss = m3::ml::logistic::LogisticLoss::new(&x, &y, 1e-2, &ctx);
    let dim = loss.dimension();
    let initial = loss.value(&vec![0.0; dim]);

    let result = AsyncSgd::new()
        .learning_rate(0.5)
        .decay(0.05)
        .batch_size(32)
        .epochs(12)
        .seed(99)
        .mode(UpdateMode::Hogwild)
        .run(&loss, vec![0.0; dim], &ctx)
        .expect("hogwild stress run must not diverge");

    // One loss evaluation per epoch; the curve must trend down: strictly
    // below the starting loss throughout, and each epoch no worse than the
    // previous one beyond a small stochastic wobble.
    assert_eq!(result.value_history.len(), 12);
    let mut previous = initial;
    for (epoch, &value) in result.value_history.iter().enumerate() {
        assert!(value.is_finite());
        assert!(
            value < initial,
            "epoch {epoch}: loss {value} not below the starting loss {initial}"
        );
        assert!(
            value <= previous * 1.05,
            "epoch {epoch}: loss {value} regressed from {previous}"
        );
        previous = value;
    }
    assert!(
        result.value < initial * 0.5,
        "final loss {} should at least halve the starting loss {initial}",
        result.value
    );
}
