//! Convergence & determinism battery for the worker-pool mini-batch SGD.
//!
//! The contract under test (see `m3_optim::async_sgd`):
//!
//! * **Deterministic mode** is bit-identical across thread counts and across
//!   in-memory / memory-mapped backings, for dense and CSR layouts alike —
//!   the same guarantee every other sweep in the workspace makes.
//! * Dense and CSR runs of the same schedule agree to relative rounding
//!   (different kernels, same math).
//! * **Hogwild mode** gives up bit-reproducibility but must still converge:
//!   its final full-data loss lands within a small tolerance of the L-BFGS
//!   reference optimum.
//! * All of the above also holds with SIMD kernels disabled
//!   (`M3_FORCE_SCALAR=1`), exercised by re-executing the battery in a child
//!   process.

use m3::prelude::*;

const SEED: u64 = 0x5eed_cafe;

/// Dense classification fixture shared by the battery.
fn dense_problem(n: usize) -> (DenseMatrix, Vec<f64>) {
    let generator = LinearProblem::classification(vec![1.5, -2.0, 0.5, 0.25, -1.0], 0.3, 0.05, 77);
    let (x, y) = generator.materialize(n);
    (x, y)
}

/// The dense fixture with ~2/3 of its entries zeroed, as CSR + dense twin.
fn sparse_problem(n: usize) -> (CsrMatrix, DenseMatrix, Vec<f64>) {
    let (x, y) = dense_problem(n);
    let mut data = x.as_slice().to_vec();
    for (i, v) in data.iter_mut().enumerate() {
        if (i * 2654435761) % 3 != 0 {
            *v = 0.0;
        }
    }
    let dense = DenseMatrix::from_vec(data, x.n_rows(), x.n_cols()).unwrap();
    (CsrMatrix::from_dense(&dense), dense, y)
}

fn sgd_trainer(mode: UpdateMode, epochs: usize) -> LogisticRegression {
    LogisticRegression::new(LogisticConfig {
        solver: Solver::Sgd(
            AsyncSgd::new()
                .learning_rate(0.5)
                .batch_size(32)
                .epochs(epochs)
                .seed(SEED)
                .mode(mode),
        ),
        ..Default::default()
    })
}

fn ctx_with(threads: usize) -> ExecContext {
    ExecContext::new().with_threads(threads)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {x} vs {y}");
    }
}

#[test]
fn deterministic_sgd_is_bit_identical_across_threads_and_backings() {
    let (x, y) = dense_problem(300);
    let dir = tempfile::tempdir().unwrap();
    let mapped = m3::core::alloc::persist_matrix(dir.path().join("sgd.m3"), &x).unwrap();
    let trainer = sgd_trainer(UpdateMode::Deterministic, 15);

    let reference = Estimator::fit(&trainer, &x, &y, &ctx_with(1)).unwrap();
    for threads in [1usize, 2, 4] {
        let ctx = ctx_with(threads);
        let in_memory = Estimator::fit(&trainer, &x, &y, &ctx).unwrap();
        let on_mmap = Estimator::fit(&trainer, &mapped, &y, &ctx).unwrap();
        for (label, model) in [("memory", &in_memory), ("mmap", &on_mmap)] {
            assert_bits_eq(
                &reference.weights,
                &model.weights,
                &format!("{label} weights @ {threads} threads"),
            );
            assert_eq!(reference.bias.to_bits(), model.bias.to_bits());
            assert_eq!(
                reference.optimization.value.to_bits(),
                model.optimization.value.to_bits(),
                "final loss must be bit-identical"
            );
        }
    }
    // The deterministic runs actually learned something.
    assert!(reference.accuracy(&x, &y) > 0.9);
}

#[test]
fn deterministic_sparse_sgd_is_bit_identical_across_threads_and_backings() {
    let (csr, _, y) = sparse_problem(300);
    let dir = tempfile::tempdir().unwrap();
    let mapped = m3::core::sparse::persist_csr(dir.path().join("sgd.m3csr"), &csr, None).unwrap();
    let trainer = sgd_trainer(UpdateMode::Deterministic, 15);

    let reference = trainer.fit_sparse(&csr, &y, &ctx_with(1)).unwrap();
    for threads in [1usize, 2, 4] {
        let ctx = ctx_with(threads);
        let in_memory = trainer.fit_sparse(&csr, &y, &ctx).unwrap();
        let on_mmap = trainer.fit_sparse(&mapped, &y, &ctx).unwrap();
        for (label, model) in [("memory", &in_memory), ("mmap", &on_mmap)] {
            assert_bits_eq(
                &reference.weights,
                &model.weights,
                &format!("CSR {label} weights @ {threads} threads"),
            );
            assert_eq!(reference.bias.to_bits(), model.bias.to_bits());
        }
    }
}

#[test]
fn deterministic_sgd_agrees_between_dense_and_csr_layouts() {
    let (csr, dense, y) = sparse_problem(300);
    let trainer = sgd_trainer(UpdateMode::Deterministic, 15);
    let ctx = ctx_with(2);
    let on_dense = Estimator::fit(&trainer, &dense, &y, &ctx).unwrap();
    let on_sparse = trainer.fit_sparse(&csr, &y, &ctx).unwrap();
    // Same batch schedule, different kernels: relative agreement, not bitwise.
    for (a, b) in on_dense.weights.iter().zip(&on_sparse.weights) {
        assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
    }
    assert!((on_dense.bias - on_sparse.bias).abs() <= 1e-9 * (1.0 + on_dense.bias.abs()));
}

#[test]
fn hogwild_sgd_reaches_the_lbfgs_reference_loss() {
    // A properly regularised problem: the optimum sits at a modest weight
    // norm, so a decaying-step SGD run can actually reach it rather than
    // chase the huge-margin solution of a near-separable dataset.
    let generator = LinearProblem::classification(vec![1.5, -2.0, 0.5, 0.25, -1.0], 0.3, 0.2, 77);
    let (x, y) = generator.materialize(500);
    let l2 = 1e-2;
    let ctx = ctx_with(4);

    let lbfgs = Estimator::fit(
        &LogisticRegression::new(LogisticConfig {
            l2,
            ..Default::default()
        }),
        &x,
        &y,
        &ctx,
    )
    .unwrap();
    let reference_loss = lbfgs.optimization.value;

    let trainer = LogisticRegression::new(LogisticConfig {
        l2,
        solver: Solver::Sgd(
            AsyncSgd::new()
                .learning_rate(0.5)
                .decay(0.05)
                .batch_size(32)
                .epochs(60)
                .seed(SEED)
                .mode(UpdateMode::Hogwild),
        ),
        ..Default::default()
    });
    let hogwild = Estimator::fit(&trainer, &x, &y, &ctx).unwrap();
    let sgd_loss = hogwild.optimization.value;
    assert!(
        sgd_loss <= reference_loss + 1e-3 * (1.0 + reference_loss.abs()),
        "hogwild loss {sgd_loss} should reach the L-BFGS reference {reference_loss}"
    );
    assert!(hogwild.accuracy(&x, &y) > 0.85);
}

#[test]
fn deterministic_sgd_battery_passes_under_forced_scalar_kernels() {
    // The kernel path is cached per process, so the scalar-path run needs a
    // fresh process: re-exec this test binary with M3_FORCE_SCALAR=1 and a
    // filter that picks up every `deterministic*` test (this one included —
    // it short-circuits below in the child, so there is no recursion).
    if m3::linalg::dispatch::force_scalar_requested() {
        assert_eq!(
            m3::linalg::dispatch::active(),
            m3::linalg::KernelPath::Scalar,
            "M3_FORCE_SCALAR=1 must pin the scalar kernel path"
        );
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let output = std::process::Command::new(exe)
        .args(["deterministic", "--test-threads", "1"])
        .env("M3_FORCE_SCALAR", "1")
        .output()
        .expect("failed to re-exec the SGD battery");
    assert!(
        output.status.success(),
        "SGD battery failed under M3_FORCE_SCALAR=1:\n--- stdout ---\n{}\n--- stderr ---\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}
